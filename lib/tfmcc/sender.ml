(* Echo priority classes, §2.4.2 (lower = more urgent). *)
let class_new_clr = 1

let class_no_rtt = 2

let class_non_clr = 3

let class_clr = 4

type pending_echo = {
  pe_rx : int;
  pe_ts : float;  (* receiver timestamp from the report *)
  pe_arrival : float;  (* sender clock when the report arrived *)
  pe_class : int;
  pe_rate : float;  (* tie-break: lowest reported rate first *)
}

type clr_state = {
  mutable clr_id : int;
  mutable clr_rtt : float;
  mutable clr_rate : float;  (* last (adjusted) rate the CLR reported *)
  mutable clr_last_report : float;
}

type prev_clr = { prev_id : int; prev_rate : float; prev_until : float }

type t = {
  env : Env.t;
  cfg : Config.t;
  session : int;
  flow : int;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable rate : float;  (* X_send, bytes/s *)
  mutable in_ss : bool;
  mutable ss_target : float;
  mutable ss_min_xrecv : float;  (* min receive rate reported this round *)
  mutable ss_round : int;  (* last round that raised the target (§2.6:
                              the target grows once per feedback round,
                              not per CLR report) *)
  mutable seq : int;
  mutable round : int;
  mutable round_duration : float;
  mutable round_started : float;
  mutable max_rtt : float;
  (* Last RTT sample and its arrival time per receiver; entries leave
     with an explicit leave report, on CLR timeout, or by staleness. *)
  rtt_table : (int, float * float) Hashtbl.t;
  mutable clr : clr_state option;
  mutable prev_clr : prev_clr option;
  (* Lowest report seen this round, echoed in data packets. *)
  mutable round_fb : Wire.fb_echo option;
  mutable pending_echoes : pending_echo list;  (* sorted by (class, rate) *)
  mutable clr_echo : pending_echo option;  (* CLR default echo *)
  mutable last_rate_change : float;
  mutable block_source : (unit -> int) option;
  (* Pacing rides fire-and-forget events ([Env.after_unit]): the one
     closure per [start] is stored here and re-scheduled for every
     packet, so steady-state pacing allocates neither a closure nor a
     cancellable event record.  [stop] bumps [pacing_gen] instead of
     cancelling; a stale event fires into a generation check and dies. *)
  mutable pacing_gen : int;
  mutable pacing_cb : unit -> unit;
  mutable round_timer : Env.timer option;
  mutable sent : int;
  mutable reports : int;
  mutable clr_changes : int;
  mutable clr_timeouts : int;
  (* Degradation state machine (see DESIGN.md §7): [last_report_arrival]
     feeds starvation detection; [clr_lost] is set when the CLR vanished
     (timeout or leave) and cleared when a replacement is installed. *)
  mutable last_report_arrival : float;
  mutable starved : bool;
  mutable starvations : int;
  mutable malformed_dropped : int;
  mutable clr_lost : bool;
  mutable clr_failovers_n : int;
  (* Adversarial-receiver defenses (DESIGN.md §10); None unless
     [cfg.defense_enabled]. *)
  defense : Defense.t option;
  (* Observability: journal scope plus registry handles (resolved once at
     creation; recording is a field write on the hot path). *)
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_sent : Obs.Metrics.Counter.t;
  m_reports : Obs.Metrics.Counter.t;
  m_clr_changes : Obs.Metrics.Counter.t;
  m_clr_timeouts : Obs.Metrics.Counter.t;
  m_starvations : Obs.Metrics.Counter.t;
  m_malformed : Obs.Metrics.Counter.t;
  m_failovers : Obs.Metrics.Counter.t;
  m_rate : Obs.Metrics.Gauge.t;
}

let now t = t.env.Env.now ()

let jnl t ?severity ev = Obs.Sink.event t.obs ~time:(now t) ?severity t.scope ev

let min_rate t = float_of_int t.cfg.Config.packet_size /. 64.

let s_float t = float_of_int t.cfg.Config.packet_size

let rate_bytes_per_s t = t.rate

let clr t = match t.clr with None -> None | Some c -> Some c.clr_id

let clr_rate t = match t.clr with None -> None | Some c -> Some c.clr_rate

let in_slowstart t = t.in_ss

let round t = t.round

let round_duration t = t.round_duration

let max_rtt t = t.max_rtt

let packets_sent t = t.sent

let reports_received t = t.reports

let clr_changes t = t.clr_changes

let clr_timeouts t = t.clr_timeouts

let is_starved t = t.starved

let feedback_starvations t = t.starvations

let malformed_reports_dropped t = t.malformed_dropped

let clr_failovers t = t.clr_failovers_n

let defense t = t.defense

(* NaN-safe: validation keeps NaN out of the inputs, but the rate is the
   one value that must never be poisoned, so the clamp itself is the last
   line of defence (Float.max propagates NaN). *)
let clamp_rate t x =
  if Float.is_nan x then min_rate t
  else Float.min t.cfg.Config.max_rate (Float.max (min_rate t) x)

(* ---------------------------------------------------------------- echoes *)

let pop_echo t ~now =
  match t.pending_echoes with
  | pe :: rest ->
      t.pending_echoes <- rest;
      Some
        { Wire.rx_id = pe.pe_rx; rx_ts = pe.pe_ts; echo_delay = now -. pe.pe_arrival }
  | [] -> (
      match t.clr_echo with
      | Some pe ->
          Some
            { Wire.rx_id = pe.pe_rx; rx_ts = pe.pe_ts; echo_delay = now -. pe.pe_arrival }
      | None -> None)

let queue_echo t pe =
  (* One pending echo per receiver: the newest report wins. *)
  let rest = List.filter (fun e -> e.pe_rx <> pe.pe_rx) t.pending_echoes in
  let cmp a b =
    match compare a.pe_class b.pe_class with
    | 0 -> compare a.pe_rate b.pe_rate
    | c -> c
  in
  t.pending_echoes <- List.sort cmp (pe :: rest)

(* ------------------------------------------------------------ rate moves *)

let journal_rate_change t ~from_bps ~reason =
  if t.rate <> from_bps then
    jnl t ~severity:Obs.Journal.Debug
      (Obs.Journal.Rate_change { from_bps; to_bps = t.rate; reason })

let apply_decrease t new_rate =
  let from_bps = t.rate in
  t.rate <- clamp_rate t new_rate;
  t.last_rate_change <- now t;
  journal_rate_change t ~from_bps ~reason:"decrease"

(* Increase toward [desired], at most [increase_limit_packets] packets per
   RTT since the last change. *)
let apply_capped_increase t ~desired ~rtt =
  let now = now t in
  let dt = Float.max 0. (now -. t.last_rate_change) in
  let rtt = Float.max 1e-3 rtt in
  let cap =
    t.rate +. (t.cfg.Config.increase_limit_packets *. s_float t *. (dt /. rtt))
  in
  let from_bps = t.rate in
  t.rate <- clamp_rate t (Float.min desired cap);
  t.last_rate_change <- now;
  journal_rate_change t ~from_bps ~reason:"capped-increase"

(* -------------------------------------------------------------- the CLR *)

let set_clr t ~rx ~rtt ~rate_adj =
  let now = now t in
  (* Installing any CLR while the previous one is known lost completes a
     failover: the session found its new limiting receiver. *)
  if t.clr_lost then begin
    t.clr_lost <- false;
    t.clr_failovers_n <- t.clr_failovers_n + 1;
    Obs.Metrics.Counter.inc t.m_failovers
  end;
  (match t.clr with
  | Some c when c.clr_id = rx ->
      c.clr_rtt <- rtt;
      c.clr_rate <- rate_adj;
      c.clr_last_report <- now
  | Some c ->
      (* Remember the outgoing CLR for conservative switch-back (App. C). *)
      if t.cfg.Config.remember_clr then
        t.prev_clr <-
          Some
            {
              prev_id = c.clr_id;
              prev_rate = c.clr_rate;
              prev_until = now +. (t.cfg.Config.remember_clr_rtts *. Float.max c.clr_rtt 1e-3);
            };
      t.clr_changes <- t.clr_changes + 1;
      Obs.Metrics.Counter.inc t.m_clr_changes;
      jnl t (Obs.Journal.Clr_change { prev = c.clr_id; clr = rx });
      t.clr <- Some { clr_id = rx; clr_rtt = rtt; clr_rate = rate_adj; clr_last_report = now }
  | None ->
      t.clr_changes <- t.clr_changes + 1;
      Obs.Metrics.Counter.inc t.m_clr_changes;
      jnl t (Obs.Journal.Clr_change { prev = -1; clr = rx });
      t.clr <- Some { clr_id = rx; clr_rtt = rtt; clr_rate = rate_adj; clr_last_report = now })

let drop_clr t ~reason =
  (match t.clr with
  | Some c ->
      Hashtbl.remove t.rtt_table c.clr_id;
      t.clr_lost <- true;
      jnl t ~severity:Obs.Journal.Warn
        (Obs.Journal.Clr_drop { clr = c.clr_id; reason })
  | None -> ());
  t.clr <- None;
  t.clr_echo <- None

(* App. C: if the stored previous CLR's rate is lower than where the rate
   is heading, switch back to it without waiting for feedback. *)
let check_prev_clr t ~desired =
  match t.prev_clr with
  | Some p when now t <= p.prev_until ->
      if desired > p.prev_rate then begin
        (match t.clr with
        | Some c ->
            set_clr t ~rx:p.prev_id ~rtt:c.clr_rtt ~rate_adj:p.prev_rate
        | None -> set_clr t ~rx:p.prev_id ~rtt:t.cfg.Config.rtt_initial ~rate_adj:p.prev_rate);
        t.prev_clr <- None;
        p.prev_rate
      end
      else desired
  | Some _ ->
      t.prev_clr <- None;
      desired
  | None -> desired

(* --------------------------------------------------------------- reports *)

let sender_side_rtt t ~echo_ts ~echo_delay =
  let sample = now t -. echo_ts -. echo_delay in
  if Float.is_nan sample || sample <= 0. then None else Some sample

let on_report t ~rx ~ts ~echo_ts ~echo_delay ~rate ~have_rtt ~rtt ~p:_ ~x_recv
    ~round:report_round ~has_loss ~leaving =
  let now = now t in
  t.reports <- t.reports + 1;
  Obs.Metrics.Counter.inc t.m_reports;
  (* Any validated report proves the feedback channel is alive: leave the
     starved state (the decayed rate recovers through the normal capped
     increase once a CLR re-establishes itself). *)
  t.last_report_arrival <- now;
  t.starved <- false;
  if leaving then begin
    Hashtbl.remove t.rtt_table rx;
    match t.clr with
    | Some c when c.clr_id = rx ->
        (* The limiting receiver left: drop it and let the capped ramp
           find the next CLR. *)
        drop_clr t ~reason:"leave";
        t.clr_timeouts <- t.clr_timeouts + 1;
        Obs.Metrics.Counter.inc t.m_clr_timeouts
    | _ -> ()
  end
  else begin
    (* Sender-side RTT: used to rescale rate reports that were computed
       with the initial RTT (§2.4.4). *)
    let rtt_sender = sender_side_rtt t ~echo_ts ~echo_delay in
    let rtt_best =
      if have_rtt then rtt else Option.value rtt_sender ~default:rtt
    in
    (* R_max must reflect the RTT the receiver itself operates with: a
       receiver still using the 500 ms initial estimate draws feedback
       timers from it, so rounds must stay that long until it has a real
       measurement (paper footnote 7).  [rtt] is the receiver's own
       current estimate. *)
    let rtt_for_rmax = if have_rtt then rtt else Float.max rtt rtt_best in
    Hashtbl.replace t.rtt_table rx (rtt_for_rmax, now);
    let rate_adj =
      if has_loss && not have_rtt then
        match rtt_sender with
        | Some r when r > 0. -> rate *. rtt /. r  (* X ∝ 1/R *)
        | Some _ | None -> rate
      else rate
    in
    (* Cross-receiver outlier screen: a report whose rate is a low
       outlier against the group's recent reports must not lower the
       rate, capture the CLR, or be echoed as the round minimum (the
       echo drives receiver-side suppression, which is exactly what an
       understater wants to monopolize). *)
    let admitted =
      match t.defense with
      | None -> true
      | Some d ->
          Defense.admit d ~now ~round_duration:t.round_duration
            ~sender_rate:t.rate ~rx ~rate:rate_adj
    in
    (* CLR candidacy additionally needs a track record (an earlier
       admitted report) and a clean quarantine history — a brand-new or
       just-released receiver may inform the rate but not lead it. *)
    let leads =
      admitted
      &&
      match t.defense with
      | None -> true
      | Some d -> Defense.may_lead d ~now ~round_duration:t.round_duration rx
    in
    (* Track the lowest report of this round for suppression echoing.
       Loss reports dominate slowstart receive-rate reports. *)
    (if admitted then
       let candidate =
         { Wire.fb_rx_id = rx; fb_rate = rate_adj; fb_has_loss = has_loss }
       in
       match t.round_fb with
       | None -> t.round_fb <- Some candidate
       | Some cur ->
           let better =
             if has_loss <> cur.Wire.fb_has_loss then has_loss
             else rate_adj < cur.Wire.fb_rate
           in
           if better then t.round_fb <- Some candidate);
    (* Slowstart bookkeeping. *)
    if t.in_ss then begin
      if has_loss then begin
        if leads then begin
          (* First loss ends slowstart (§2.6). *)
          t.in_ss <- false;
          set_clr t ~rx ~rtt:rtt_best ~rate_adj;
          apply_decrease t (Float.min t.rate rate_adj);
          jnl t (Obs.Journal.Slowstart_exit { rate_bps = t.rate })
        end
      end
      else begin
        (* No-loss slowstart election needs only [admitted], not the
           track-record gate: a forged-low receive rate is already
           caught by the outlier screen, and gating the bootstrap
           election on a track record would starve the very first
           rounds (under suppression most receivers speak here for the
           first time). *)
        if admitted && x_recv < t.ss_min_xrecv then begin
          t.ss_min_xrecv <- x_recv;
          set_clr t ~rx ~rtt:rtt_best ~rate_adj:x_recv
        end
        else begin
          match t.clr with
          | Some c when c.clr_id = rx ->
              c.clr_last_report <- now;
              c.clr_rtt <- rtt_best;
              (* CLR's fresh receive rate drives the target. *)
              if admitted then t.ss_min_xrecv <- x_recv
          | _ -> ()
        end;
        (* Until some report was allowed to set the minimum, there is no
           evidence to raise the target on. *)
        if t.ss_min_xrecv < infinity then begin
          let proposed =
            clamp_rate t
              (t.cfg.Config.slowstart_multiplier *. Float.max 1. t.ss_min_xrecv)
          in
          let prev_target = t.ss_target in
          if proposed < t.ss_target then t.ss_target <- proposed
          else if report_round > t.ss_round then begin
            t.ss_round <- report_round;
            t.ss_target <- proposed
          end;
          if t.ss_target <> prev_target then
            jnl t ~severity:Obs.Journal.Debug
              (Obs.Journal.Rate_change
                 {
                   from_bps = prev_target;
                   to_bps = t.ss_target;
                   reason = "slowstart-target";
                 })
        end
      end
    end
    else begin
      (* Congestion-avoidance rate control. *)
      match t.clr with
      | None ->
          (* Failover install: no current CLR, so no flap damping — but
             the outlier screen and the track-record gate still apply (a
             vacant election is the understater's favourite moment to
             volunteer). *)
          if has_loss && leads then begin
            set_clr t ~rx ~rtt:rtt_best ~rate_adj;
            if rate_adj < t.rate then apply_decrease t rate_adj
            else apply_capped_increase t ~desired:(check_prev_clr t ~desired:rate_adj) ~rtt:rtt_best
          end
      | Some c ->
          if rx = c.clr_id then begin
            c.clr_last_report <- now;
            (* A non-admitted CLR report (low outlier) keeps the CLR
               alive but moves nothing: a turncoat CLR can freeze the
               rate, never crash it. *)
            if admitted then begin
              c.clr_rtt <- rtt_best;
              c.clr_rate <- rate_adj;
              if rate_adj < t.rate then apply_decrease t rate_adj
              else begin
                let desired = check_prev_clr t ~desired:rate_adj in
                apply_capped_increase t ~desired ~rtt:rtt_best
              end
            end
          end
          else if has_loss && rate_adj < t.rate then begin
            (* A lower-rate receiver takes over as CLR — subject to the
               outlier screen and flap damping (hysteresis + hold-down). *)
            let allowed =
              leads
              &&
              match t.defense with
              | None -> true
              | Some d ->
                  Defense.may_switch d ~now ~sender_rate:t.rate
                    ~candidate_rate:rate_adj ~rx
            in
            if allowed then begin
              (match t.defense with
              | Some d ->
                  Defense.note_switch d ~now ~round_duration:t.round_duration
              | None -> ());
              set_clr t ~rx ~rtt:rtt_best ~rate_adj;
              apply_decrease t rate_adj
            end
          end
    end;
    (* Echo scheduling. *)
    let is_new_clr = match t.clr with Some c -> c.clr_id = rx | None -> false in
    let pe_class =
      if is_new_clr && (match t.clr_echo with Some e -> e.pe_rx <> rx | None -> true)
      then class_new_clr
      else if not have_rtt then class_no_rtt
      else if match t.clr with Some c -> c.clr_id = rx | None -> false then class_clr
      else class_non_clr
    in
    let pe = { pe_rx = rx; pe_ts = ts; pe_arrival = now; pe_class; pe_rate = rate_adj } in
    if pe_class = class_clr then t.clr_echo <- Some pe else queue_echo t pe;
    if is_new_clr then t.clr_echo <- Some pe
  end

(* ---------------------------------------------------------------- rounds *)

let check_clr_timeout t =
  match t.clr with
  | Some c
    when now t -. c.clr_last_report
         > t.cfg.Config.clr_timeout_rounds *. t.round_duration ->
      jnl t ~severity:Obs.Journal.Warn (Obs.Journal.Timeout { what = "clr" });
      drop_clr t ~reason:"timeout";
      t.clr_timeouts <- t.clr_timeouts + 1;
      Obs.Metrics.Counter.inc t.m_clr_timeouts
  | _ -> ()

(* Total feedback starvation (paper's feedback-timeout rule, extended to
   the no-feedback-at-all case): when not a single receiver has been
   heard for [starvation_rounds] rounds — partition, dead return path,
   everyone crashed — the last-reported rate is stale and free-running at
   it (or worse, ramping) would dump traffic into a black hole.  Decay
   multiplicatively once per round down to the one-packet floor; any
   valid report ends the state immediately. *)
let check_starvation t =
  let now = now t in
  if now -. t.last_report_arrival
     > t.cfg.Config.starvation_rounds *. t.round_duration
  then begin
    if not t.starved then begin
      t.starved <- true;
      t.starvations <- t.starvations + 1;
      Obs.Metrics.Counter.inc t.m_starvations;
      jnl t ~severity:Obs.Journal.Warn
        (Obs.Journal.Starvation { rate_bps = t.rate });
      (* Growth phases assume a live feedback loop. *)
      t.in_ss <- false;
      (* Starvation subsumes the CLR timeout: silence from everyone
         includes the CLR, and waiting the full clr_timeout_rounds is
         futile once rounds stretch with the decaying rate.  Dropping it
         here makes the data header advertise clr = -1, which is what
         tells surviving receivers to volunteer — the failover path. *)
      match t.clr with
      | Some _ ->
          drop_clr t ~reason:"starvation";
          t.clr_timeouts <- t.clr_timeouts + 1;
          Obs.Metrics.Counter.inc t.m_clr_timeouts
      | None -> ()
    end;
    let from_bps = t.rate in
    t.rate <- clamp_rate t (t.rate *. t.cfg.Config.starvation_decay);
    t.ss_target <- Float.min t.ss_target t.rate;
    t.last_rate_change <- now;
    journal_rate_change t ~from_bps ~reason:"starvation-decay"
  end

let rec start_round t =
  t.round_timer <- None;
  if t.running then begin
    let now = now t in
    t.round <- t.round + 1;
    t.round_started <- now;
    t.round_fb <- None;
    (* R_max: the maximum RTT over receivers heard from within the last
       two rounds, falling back to the initial value when nobody
       (recently) reported.  Stale entries are evicted so a departed
       slow receiver stops inflating the round duration. *)
    let horizon = now -. (2. *. t.round_duration) in
    let stale =
      Hashtbl.fold
        (fun rx (_, seen) acc -> if seen < horizon then rx :: acc else acc)
        t.rtt_table []
    in
    List.iter (Hashtbl.remove t.rtt_table) stale;
    let observed =
      Hashtbl.fold (fun _ (rtt, _) acc -> Float.max rtt acc) t.rtt_table 0.
    in
    t.max_rtt <- (if observed > 0. then observed else t.cfg.Config.rtt_initial);
    t.round_duration <-
      Feedback_timer.round_duration_clamped
        ~on_anomaly:(fun () -> Env.clock_anomaly t.env ~kind:"late-timer")
        ~cfg:t.cfg ~max_rtt:t.max_rtt ~rate:t.rate;
    jnl t ~severity:Obs.Journal.Debug
      (Obs.Journal.Round_start
         { round = t.round; duration = t.round_duration; max_rtt = t.max_rtt });
    (match t.defense with
    | Some d ->
        Defense.on_round d ~now ~round_duration:t.round_duration
          ~sender_rate:t.rate
    | None -> ());
    check_clr_timeout t;
    check_starvation t;
    t.round_timer <-
      Some (t.env.Env.after ~delay:t.round_duration (fun () -> start_round t))
  end

(* --------------------------------------------------------------- pacing *)

let send_packet t ~gen =
  if t.running && gen = t.pacing_gen then begin
    let now = now t in
    (* Slowstart ramp: approach the target over roughly one RTT. *)
    (if t.in_ss && t.ss_target > 0. then begin
       let rtt = Float.max 1e-3 t.max_rtt in
       let dt = float_of_int t.cfg.Config.packet_size /. Float.max t.rate 1. in
       if t.ss_target < t.rate then t.rate <- clamp_rate t t.ss_target
       else begin
         let step = (t.ss_target -. t.rate) *. Float.min 1. (dt /. rtt) in
         t.rate <- clamp_rate t (t.rate +. step)
       end
     end
     else if (not t.in_ss) && t.clr = None && not t.starved then begin
       (* No CLR (timeout/leave) but feedback is flowing: ramp up at the
          capped rate until a receiver objects and becomes CLR.  While
          starved the rate only decays (see check_starvation). *)
       let rtt = Float.max 1e-3 t.max_rtt in
       let dt = float_of_int t.cfg.Config.packet_size /. Float.max t.rate 1. in
       t.rate <-
         clamp_rate t
           (t.rate +. (t.cfg.Config.increase_limit_packets *. s_float t *. (dt /. rtt)))
     end);
    let msg =
      Wire.Data
        {
          session = t.session;
          seq = t.seq;
          ts = now;
          rate = t.rate;
          round = t.round;
          round_duration = t.round_duration;
          max_rtt = t.max_rtt;
          clr = (match t.clr with Some c -> c.clr_id | None -> -1);
          in_slowstart = t.in_ss;
          echo = pop_echo t ~now;
          fb = t.round_fb;
          app = (match t.block_source with Some f -> f () | None -> -1);
        }
    in
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    Obs.Metrics.Counter.inc t.m_sent;
    Obs.Metrics.Gauge.set t.m_rate t.rate;
    t.env.Env.send ~dest:Env.To_group ~flow:t.flow
      ~size:t.cfg.Config.packet_size msg;
    (* +-25% pacing jitter: breaks deterministic phase-locking between
       the paced flow and drop-tail queue service (the classic simulator
       phase effect that would otherwise concentrate drops on the paced
       flow). *)
    let jitter = 0.75 +. (0.5 *. Stats.Rng.uniform t.rng) in
    let delay = jitter *. float_of_int t.cfg.Config.packet_size /. t.rate in
    t.env.Env.after_unit ~delay t.pacing_cb
  end

let create ~env ~cfg ~session ?flow ?initial_rate () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sender.create: bad config: " ^ msg));
  let flow = Option.value flow ~default:session in
  let initial_rate =
    Option.value initial_rate
      ~default:(float_of_int cfg.Config.packet_size /. cfg.Config.rtt_initial)
  in
  let obs = env.Env.obs in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("session", string_of_int session) ] in
  {
    env;
    cfg;
    session;
    flow;
    rng = env.Env.split_rng ();
    running = false;
    rate = initial_rate;
    in_ss = true;
    ss_target = initial_rate;
    ss_min_xrecv = infinity;
    ss_round = -1;
    seq = 0;
    round = -1;
    round_duration = cfg.Config.rtt_initial *. cfg.Config.round_rtt_factor;
    round_started = 0.;
    max_rtt = cfg.Config.rtt_initial;
    rtt_table = Hashtbl.create 64;
    clr = None;
    prev_clr = None;
    round_fb = None;
    pending_echoes = [];
    clr_echo = None;
    last_rate_change = 0.;
    block_source = None;
    pacing_gen = 0;
    pacing_cb = ignore;  (* installed by [start] *)
    round_timer = None;
    sent = 0;
    reports = 0;
    clr_changes = 0;
    clr_timeouts = 0;
    last_report_arrival = 0.;
    starved = false;
    starvations = 0;
    malformed_dropped = 0;
    clr_lost = false;
    clr_failovers_n = 0;
    defense =
      (if cfg.Config.defense_enabled then
         Some (Defense.create ~cfg ~obs ~session ~node:env.Env.id ())
       else None);
    obs;
    scope = Obs.Journal.scope ~session ~node:env.Env.id "tfmcc.sender";
    m_sent = Obs.Metrics.counter metrics ~labels "tfmcc_sender_packets_sent_total";
    m_reports = Obs.Metrics.counter metrics ~labels "tfmcc_sender_reports_total";
    m_clr_changes =
      Obs.Metrics.counter metrics ~labels "tfmcc_sender_clr_changes_total";
    m_clr_timeouts =
      Obs.Metrics.counter metrics ~labels "tfmcc_sender_clr_timeouts_total";
    m_starvations =
      Obs.Metrics.counter metrics ~labels "tfmcc_sender_starvations_total";
    m_malformed =
      Obs.Metrics.counter metrics ~labels "tfmcc_sender_malformed_drops_total";
    m_failovers =
      Obs.Metrics.counter metrics ~labels "tfmcc_sender_clr_failovers_total";
    m_rate = Obs.Metrics.gauge metrics ~labels "tfmcc_sender_rate_bytes_per_s";
  }

(* Direct entry for hosts that already hold the unwrapped record (see
   [Receiver.deliver_data]). *)
let deliver_report t (r : Wire.report) =
  if r.Wire.session = t.session then begin
      if t.running then begin
        (* Field validation plus round staleness: a report more than
           the CLR timeout behind the current round carries dead
           state (a receiver that far out of sync is about to be
           timed out anyway) and must not refresh the CLR. *)
        let stale_limit =
          int_of_float (Float.ceil t.cfg.Config.clr_timeout_rounds)
        in
        if
          Wire.report_fields_valid ~rx_id:r.rx_id ~ts:r.ts ~echo_ts:r.echo_ts
            ~echo_delay:r.echo_delay ~rate:r.rate ~rtt:r.rtt ~p:r.p
            ~x_recv:r.x_recv ~round:r.round
          && r.round >= t.round - stale_limit
        then begin
          (* Plausibility screen (DESIGN.md §10).  Leave reports are
             exempt: they carry no rate influence, and refusing a
             goodbye only delays the CLR timeout. *)
          let defense_drop =
            match t.defense with
            | None -> false
            | Some _ when r.leaving -> false
            | Some d ->
                let is_clr =
                  match t.clr with
                  | Some c -> c.clr_id = r.rx_id
                  | None -> false
                in
                let rtt_sample =
                  sender_side_rtt t ~echo_ts:r.echo_ts ~echo_delay:r.echo_delay
                in
                let rejected =
                  Defense.screen d ~now:(now t)
                    ~round_duration:t.round_duration ~sender_rate:t.rate
                    ~sender_round:t.round ~rx:r.rx_id ~rate:r.rate
                    ~have_rtt:r.have_rtt ~rtt:r.rtt ~p:r.p ~x_recv:r.x_recv
                    ~has_loss:r.has_loss ~echo_delay:r.echo_delay ~rtt_sample
                    ~is_clr
                  <> None
                in
                (* A CLR that lands in quarantine cannot be waited
                   out: every report it sends is now dropped, so the
                   usual CLR timeout would freeze the rate at the
                   captured value for its whole duration.  Drop it
                   immediately and let failover re-elect. *)
                if
                  rejected && is_clr
                  && Defense.is_quarantined d ~now:(now t) r.rx_id
                then begin
                  drop_clr t ~reason:"quarantine";
                  t.clr_timeouts <- t.clr_timeouts + 1;
                  Obs.Metrics.Counter.inc t.m_clr_timeouts
                end;
                rejected
          in
          if not defense_drop then
            on_report t ~rx:r.rx_id ~ts:r.ts ~echo_ts:r.echo_ts
              ~echo_delay:r.echo_delay ~rate:r.rate ~have_rtt:r.have_rtt
              ~rtt:r.rtt ~p:r.p ~x_recv:r.x_recv ~round:r.round
              ~has_loss:r.has_loss ~leaving:r.leaving
        end
        else begin
          t.malformed_dropped <- t.malformed_dropped + 1;
          Obs.Metrics.Counter.inc t.m_malformed;
          jnl t ~severity:Obs.Journal.Warn
            (Obs.Journal.Malformed_drop { what = "report-fields" })
        end
      end
  end
  else if t.running then begin
    (* Unknown session id: never let it near this sender's state. *)
    t.malformed_dropped <- t.malformed_dropped + 1;
    Obs.Metrics.Counter.inc t.m_malformed;
    jnl t ~severity:Obs.Journal.Warn
      (Obs.Journal.Malformed_drop { what = "unknown-session" })
  end

let deliver t msg =
  match msg with
  | Wire.Report r -> deliver_report t r
  | Wire.Data _ -> ()

let start t ~at =
  t.running <- true;
  t.pacing_gen <- t.pacing_gen + 1;
  let gen = t.pacing_gen in
  t.pacing_cb <- (fun () -> send_packet t ~gen);
  ignore
    (t.env.Env.at ~time:at (fun () ->
         t.last_rate_change <- now t;
         t.last_report_arrival <- now t;
         start_round t;
         send_packet t ~gen))

let stop t =
  t.running <- false;
  t.pacing_gen <- t.pacing_gen + 1;
  t.round_timer <- Env.cancel_opt t.round_timer

let set_block_source t f = t.block_source <- Some f
