(** Adversarial-receiver defense layer (DESIGN.md §10).

    A Byzantine receiver in single-rate multicast congestion control can
    capture the whole group's rate with one forged report: claim a tiny
    calculated rate (understater), a tiny RTT (to win the CLR election),
    or spray immediate feedback (to suppress honest reports).  This
    module is the sender-side counterpart: per-report plausibility
    screening, a cross-receiver outlier screen gating CLR capture, CLR
    flap damping, and a suspicion/quarantine score.  All decisions are
    counted in the metrics registry ([tfmcc_defense_*_total]) and
    journaled ({!Obs.Journal.Defense_reject}, {!Obs.Journal.Clr_damped},
    {!Obs.Journal.Quarantine}).

    The layer only ever {e rejects} influence — it never invents rate
    increases — so with honest receivers and default knobs its worst
    case is a short delay before a genuinely degraded receiver is
    believed.  It is instantiated only when
    {!Config.t.defense_enabled} is set. *)

type t

type reject =
  | Quarantined
  | Spam
  | Implausible_rtt
  | Implausible_rate
  | Implausible_xrecv
  | Implausible_echo_delay

val reject_name : reject -> string
(** Stable kebab-case tag, also used in journal entries. *)

val create :
  cfg:Config.t -> obs:Obs.Sink.t -> session:int -> node:int -> unit -> t

val screen :
  t ->
  now:float ->
  round_duration:float ->
  sender_rate:float ->
  sender_round:int ->
  rx:int ->
  rate:float ->
  have_rtt:bool ->
  rtt:float ->
  p:float ->
  x_recv:float ->
  has_loss:bool ->
  echo_delay:float ->
  rtt_sample:float option ->
  is_clr:bool ->
  reject option
(** Per-report plausibility: quarantine, per-round spam limit,
    echo-delay bound, RTT floor against the sender-side sample, x_recv
    against the recent sending-rate ceiling, and TCP-equation
    consistency of (rate, rtt, p).  [Some r] means drop the report;
    counters, suspicion and journal entries are already updated. *)

val admit :
  t ->
  now:float ->
  round_duration:float ->
  sender_rate:float ->
  rx:int ->
  rate:float ->
  bool
(** Cross-receiver outlier screen over reports that passed {!screen}:
    admits the report's rate into the recent-report window unless its
    log10 rate is a low outlier (median/MAD test; ratio fallback below
    quorum).  [false] means the report must not lower the rate or
    capture the CLR.  The current CLR is subject to the test like any
    other receiver, so a receiver that turns hostile after winning the
    election cannot drag the rate past the outlier band. *)

val may_lead : t -> now:float -> round_duration:float -> int -> bool
(** Track-record gate on CLR candidacy: [true] iff the receiver's first
    contact is at least most of a round old and it has no active
    quarantine or post-quarantine probation (probation doubles with
    each repeat quarantine).  Blocks first-utterance capture by unknown
    receivers and cyclic re-capture by released offenders; costs honest
    newcomers one extra feedback round before they may lead. *)

val may_switch :
  t -> now:float -> sender_rate:float -> candidate_rate:float -> rx:int -> bool
(** CLR flap damping for steal-over switches: hysteresis (the candidate
    must undercut the current rate by [defense_clr_hysteresis]) plus the
    exponential hold-down window.  [false] counts and journals a damped
    switch.  Failover installs (no current CLR) must not be gated. *)

val note_switch : t -> now:float -> round_duration:float -> unit
(** Record an accepted steal-over switch: arms the hold-down, doubling
    it (up to the cap) when switches arrive back to back. *)

val on_round : t -> now:float -> round_duration:float -> sender_rate:float -> unit
(** Per feedback round: decay suspicion, expire stale window entries,
    advance the sending-rate ceiling ring. *)

val is_quarantined : t -> now:float -> int -> bool

val suspicion : t -> int -> float

(** Counter accessors (mirror the registry, convenient in tests). *)

val implausible_rejects : t -> int

val outlier_rejects : t -> int

val spam_drops : t -> int

val quarantined_drops : t -> int

val quarantines : t -> int

val clr_switches_damped : t -> int
