(** TFMCC sender.

    Paces multicast data packets at rate X_send; every packet carries the
    feedback-round bookkeeping, one receiver-report echo (priority order
    of §2.4.2) and the lowest report echoed so far this round (for timer
    suppression).

    Rate control (§2.2): an incoming report below the current rate makes
    its sender the current limiting receiver (CLR) and the rate drops to
    it immediately; increases happen only on CLR feedback and are capped
    at [increase_limit_packets] packets per CLR RTT.  Reports lacking a
    valid RTT are rescaled using a sender-side RTT measurement (§2.4.4).
    Slowstart (§2.6) targets twice the minimum reported receive rate,
    approached over one RTT, and ends at the first loss report.  A CLR
    silent for [clr_timeout_rounds] feedback rounds (or sending an
    explicit leave) is dropped, after which the rate ramps up at the
    capped rate until a new report arrives (so the correct new CLR
    reveals itself).  Optionally the previous CLR is remembered for
    conservative switch-back (App. C).

    The sender is runtime-agnostic: it talks to the world only through
    its {!Env.t} (clock, timers, datagram send, observability) and
    receives inbound reports via {!deliver} from whichever environment
    hosts it — the simulator adapter ([Netsim_env]) or the real-time
    loopback/UDP runtime ([Rt]). *)

type t

val create :
  env:Env.t -> cfg:Config.t -> session:int -> ?flow:int -> ?initial_rate:float -> unit -> t
(** The sender's node id is [env.id].  [flow] is the accounting tag on
    data packets (default = [session]).  [initial_rate] defaults to one
    packet per initial RTT.  Calls [env.split_rng] exactly once. *)

val deliver : t -> Wire.msg -> unit
(** Feeds one inbound message to the sender.  Reports for this session
    are validated (field sanity, round staleness, defense screen) and
    then drive rate control; reports for a foreign session count as
    malformed; data messages are ignored.  No-op while stopped. *)

val deliver_report : t -> Wire.report -> unit
(** {!deliver} for an already-unwrapped report record — avoids boxing a
    [Wire.msg] per report for hosts with their own payload
    representation. *)

val start : t -> at:float -> unit

val stop : t -> unit

val rate_bytes_per_s : t -> float

val clr : t -> int option
(** Node id of the current limiting receiver. *)

val clr_rate : t -> float option
(** Last (sender-adjusted) rate the current CLR reported, bytes/s.  In
    congestion avoidance with a live CLR the sending rate never exceeds
    this value (modulo the one-packet-per-RTT floor) — the ceiling the
    runtime invariant checker asserts. *)

val in_slowstart : t -> bool

val round : t -> int

val round_duration : t -> float

val max_rtt : t -> float
(** Current R_max estimate used for round durations. *)

val packets_sent : t -> int

val reports_received : t -> int
(** Validated reports accepted (malformed ones are counted separately). *)

val clr_changes : t -> int

val clr_timeouts : t -> int

val is_starved : t -> bool
(** Whether the sender currently sits in the feedback-starvation decay
    (no receiver heard for [starvation_rounds] feedback rounds). *)

val feedback_starvations : t -> int
(** Transitions into the starved state so far. *)

val malformed_reports_dropped : t -> int
(** Inbound reports rejected before touching any sender state: invalid
    field values (NaN/negative RTT, p outside [0,1], non-finite rates),
    implausible rounds (future, or older than the CLR timeout) and
    unknown session ids. *)

val clr_failovers : t -> int
(** Times a replacement CLR was installed after the previous one was lost
    to silence (timeout) or an explicit leave — i.e. completed
    failovers, as opposed to {!clr_timeouts} which counts the losses. *)

val defense : t -> Defense.t option
(** The adversarial-receiver defense layer, present when the config has
    [defense_enabled] (DESIGN.md §10).  Exposes rejection counters for
    tests and summaries; the same counts are in the metrics registry as
    [tfmcc_defense_*_total]. *)

val set_block_source : t -> (unit -> int) -> unit
(** Installs the application hook: called once per outgoing data packet
    for the block id to carry (return -1 for filler).  Congestion control
    decides *when* packets go out; the application decides *what* is in
    them — reliability layers (see {!module:Repair} in [tfmcc.repair])
    plug in here. *)
