(* Byzantine receiver strategies (DESIGN.md §10).

   An adversary joins the multicast group like any receiver, snoops the
   data-packet headers, and unicasts forged — but field-valid — reports
   to the sender.  Forged reports deliberately pass
   [Wire.report_fields_valid]: the point of the suite is what happens
   *after* syntactic validation, where only the Defense layer stands
   between a liar and the group's rate.

   The understater and the rtt-liar are "consistent liars": they derive
   the claimed loss-event rate from the TCP equation at their own claimed
   (rate, rtt) via [Tcp_model.Padhye.inverse_loss], so per-report
   equation checking cannot catch them — the understater is caught by the
   cross-receiver outlier screen, the rtt-liar by the physical RTT floor,
   the spammer by the per-round report limit. *)

type strategy =
  | Understater of { factor : float }
  | Overstater of { factor : float }
  | Rtt_liar of { rtt : float; factor : float }
  | Spammer of { factor : float }

let strategy_name = function
  | Understater _ -> "understater"
  | Overstater _ -> "overstater"
  | Rtt_liar _ -> "rtt-liar"
  | Spammer _ -> "spammer"

type t = {
  env : Env.t;
  cfg : Config.t;
  session : int;
  sender : int;
  strategy : strategy;
  mutable active : bool;
  (* Snooped sender state. *)
  mutable adv_rate : float;  (* advertised X_send from the last header *)
  mutable round : int;
  mutable max_rtt : float;
  mutable last_ts : float;  (* sender timestamp of the newest data packet *)
  mutable last_arrival : float;  (* local clock at its arrival *)
  mutable have_data : bool;
  mutable reported_round : int;  (* last round we reported in *)
  mutable sent : int;
}

let node_id t = t.env.Env.id

let reports_sent t = t.sent

let strategy t = t.strategy

(* A forged report: honest echo fields (so the sender-side RTT sample is
   genuine and the report survives any echo-based check), lying rate
   machinery per strategy. *)
let forge t =
  let now = t.env.Env.now () in
  let s = t.cfg.Config.packet_size in
  let b = t.cfg.Config.b in
  let consistent_p ~rtt rate =
    if rate <= 0. then 1. else Tcp_model.Padhye.inverse_loss ~b ~s ~rtt rate
  in
  let rate, have_rtt, rtt, p, x_recv, has_loss =
    match t.strategy with
    | Understater { factor } ->
        (* Tiny calculated rate, plausible RTT, self-consistent p: the
           classic group-capture attack on single-rate multicast. *)
        let rate = factor *. t.adv_rate in
        let rtt = Float.max 1e-3 t.max_rtt in
        (rate, true, rtt, consistent_p ~rtt rate, rate, true)
    | Overstater { factor } ->
        (* No loss ever, absurd receive rate: a congested receiver hiding
           its losses so it is never elected CLR. *)
        let rate = factor *. t.adv_rate in
        let rtt = Float.max 1e-3 t.max_rtt in
        (rate, true, rtt, 0., rate, false)
    | Rtt_liar { rtt; factor } ->
        (* Undercut the current rate a little every round with a forged
           tiny RTT; the geometric decay compounds while the tiny claimed
           RTT also poisons the increase cap once elected. *)
        let rate = factor *. t.adv_rate in
        (rate, true, rtt, consistent_p ~rtt rate, t.adv_rate, true)
    | Spammer { factor } ->
        (* Immediate feedback on every data packet, always slightly below
           the sender's rate: monopolizes the suppression echo so honest
           receivers cancel their timers, and drags the rate down. *)
        let rate = factor *. t.adv_rate in
        let rtt = Float.max 1e-3 t.max_rtt in
        (rate, true, rtt, consistent_p ~rtt rate, t.adv_rate, true)
  in
  Wire.Report
    {
      session = t.session;
      rx_id = node_id t;
      ts = now;
      echo_ts = t.last_ts;
      echo_delay = now -. t.last_arrival;
      rate;
      have_rtt;
      rtt;
      p;
      x_recv;
      round = t.round;
      has_loss;
      leaving = false;
    }

let send_report t =
  t.env.Env.send
    ~dest:(Env.To_node t.sender)
    ~flow:(-1) ~size:Wire.report_size (forge t);
  t.sent <- t.sent + 1

let on_data t ~ts ~rate ~round ~max_rtt =
  t.adv_rate <- rate;
  t.max_rtt <- max_rtt;
  t.last_ts <- ts;
  t.last_arrival <- t.env.Env.now ();
  t.have_data <- true;
  let new_round = round <> t.round in
  t.round <- round;
  if t.active then
    match t.strategy with
    | Spammer _ -> send_report t
    | Understater _ | Overstater _ | Rtt_liar _ ->
        (* One forged report per feedback round, fired on the first data
           packet of the round — ahead of every honest receiver's biased
           feedback timer, so the forged rate also wins the suppression
           echo. *)
        if new_round && t.reported_round <> round then begin
          t.reported_round <- round;
          send_report t
        end

let deliver t msg =
  match msg with
  | Wire.Data d when d.Wire.session = t.session ->
      on_data t ~ts:d.ts ~rate:d.rate ~round:d.round ~max_rtt:d.max_rtt
  | Wire.Data _ | Wire.Report _ -> ()

let create ~env ~cfg ~session ~sender ~strategy () =
  let t =
    {
      env;
      cfg;
      session;
      sender;
      strategy;
      active = false;
      adv_rate = 0.;
      round = -1;
      max_rtt = cfg.Config.rtt_initial;
      last_ts = 0.;
      last_arrival = 0.;
      have_data = false;
      reported_round = -1;
      sent = 0;
    }
  in
  env.Env.join ();
  t

let start t ~at =
  ignore (t.env.Env.at ~time:at (fun () -> t.active <- true))

let stop t = t.active <- false
