(** In-network feedback aggregation (paper §6.1, Future Work).

    An aggregator sits on an interior node of the distribution tree.
    Receivers in its subtree unicast their reports to it (via the
    receiver's [report_to]); the aggregator retains only the most
    restrictive report seen within a hold interval — loss reports
    dominate rate-only reports, lower rates dominate higher — and
    forwards that single report to its parent (another aggregator or the
    sender).  Leave reports pass through immediately.

    The forwarded report keeps the originating receiver's identity and
    timestamps, so the sender's CLR election, echo-based RTT measurement
    and rate rescaling work end-to-end unchanged.  With a tree in place,
    end-to-end timer suppression becomes unnecessary
    ([Config.use_suppression = false]). *)

type t

val create :
  env:Env.t -> session:int -> parent:int -> ?hold:float -> ?cfg:Config.t -> unit -> t
(** [parent] is the node id reports are forwarded to (another
    aggregator or the sender).  Subtree reports arrive via {!deliver}.
    [hold] is the aggregation interval (default 0.2 s): the best report
    collected during it is forwarded when it expires.  The interval
    should be well below the feedback round duration.  Does not consume
    an RNG stream.

    When [cfg] is supplied and has [defense_enabled], reports whose
    claimed rate is inconsistent with the TCP equation at their own
    (rtt, p) — beyond [defense_equation_slack] — are rejected before
    aggregation (DESIGN.md §10): a lying subtree report must not
    displace the honest minimum inside the hold window. *)

val deliver : t -> Wire.msg -> unit
(** Feeds one inbound message: reports of this session enter the
    aggregation window; everything else is ignored. *)

val reports_in : t -> int
(** Reports received from the subtree. *)

val reports_out : t -> int
(** Aggregated reports forwarded to the parent. *)

val plausibility_rejected : t -> int
(** Reports dropped by the equation-consistency screen (0 without a
    defense-enabled [cfg]). *)

val node_id : t -> int
