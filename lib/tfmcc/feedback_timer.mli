(** The randomized feedback-timer mathematics of §2.5.

    Pure functions: given a round duration T, the assumed receiver bound
    N, and a receiver's rate ratio r = X_calc / X_send ∈ [0, 1], produce
    the (biased) exponentially distributed timer value, decide
    cancellation, compute round durations and the expected number of
    responses. *)

val draw :
  Stats.Rng.t ->
  bias:Config.bias ->
  t_max:float ->
  delta:float ->
  n_estimate:int ->
  ratio:float ->
  float
(** One timer value in [0, t_max].

    Unbiased (Eq. 2):  t = max(T·(1 + log_N x), 0), x ~ U(0,1].
    Offset (Eq. 3):    t = δ·T·r + (1-δ)·T·(1 + log_N x)⁺.
    Modified_offset:   as Offset with r replaced by
                       r' = (clamp(r, 0.5, 0.9) − 0.5)/0.4, so biasing
                       starts below 90 % of the sending rate and saturates
                       at 50 % (§2.5.1).
    Modified_n:        t = max(T·(1 + log_{N^r} x), 0) with N^r ≥ 2 —
                       shrinking the receiver bound with the ratio. *)

val normalized_ratio : float -> float
(** The Modified_offset truncation r ↦ (clamp(r, 0.5, 0.9) − 0.5)/0.4. *)

val draw_clamped :
  Stats.Rng.t ->
  on_anomaly:(unit -> unit) ->
  bias:Config.bias ->
  t_max:float ->
  delta:float ->
  n_estimate:int ->
  ratio:float ->
  float
(** {!draw} hardened for real clocks: a [t_max] that is non-finite or
    non-positive — a timer callback fired so late the round window
    collapsed — is clamped to a 1 ms floor and reported via
    [on_anomaly] instead of raising.  Identical to {!draw} (including
    RNG consumption) on every valid input. *)

val should_cancel : zeta:float -> own_rate:float -> echoed_rate:float -> bool
(** §2.5.2: cancel the pending timer iff
    echoed_rate − own_rate ≤ ζ·echoed_rate.  ζ = 1 cancels on any echo,
    ζ = 0 only when the echoed rate is at or below the receiver's own. *)

val round_duration :
  cfg:Config.t -> max_rtt:float -> rate:float -> float
(** T = max(round_rtt_factor·R_max, (k+1)·s/X_send): the §2.5.3 guard
    keeps suppression working when data packets are sparse. *)

val round_duration_clamped :
  on_anomaly:(unit -> unit) -> cfg:Config.t -> max_rtt:float -> rate:float -> float
(** {!round_duration} hardened for real clocks: a non-finite or
    non-positive [max_rtt]/[rate] (non-monotonic clock artefacts) falls
    back to the configured initial RTT / one packet per second and is
    reported via [on_anomaly] instead of raising.  Identical to
    {!round_duration} on every valid input. *)

val expected_messages :
  n:int -> n_estimate:int -> delay:float -> t_suppress:float -> float
(** Expected number of feedback messages per round for plain exponential
    suppression (the Fuhrmann–Widmer formula behind Fig. 4): [n] actual
    receivers, bound [n_estimate], one-way echo [delay] Δ, suppression
    window [t_suppress] T'.  Computed by numerical integration of
    n·E[(1 − F(t−Δ))^(n−1)] under the timer distribution F.

    Results are memoized per argument tuple in a bounded, domain-local
    cache: repeated calls with the identical arguments (every feedback
    round does this) return in O(1), and parallel sweep domains never
    contend on shared state. *)

val expected_messages_uncached :
  n:int -> n_estimate:int -> delay:float -> t_suppress:float -> float
(** The raw integral behind {!expected_messages}, bypassing the memo —
    exposed so tests can pin the cache to the ground truth. *)
