(* Adversarial-receiver defense layer (DESIGN.md §10).

   All state is sender-side and per-session.  The layer answers three
   questions about an inbound, field-valid receiver report:

   1. [screen]  — is the report even physically/self-consistently
      possible?  (TCP-equation consistency at the claimed (rtt, p),
      claimed RTT against the sender-side echo floor, claimed x_recv
      against the sending rate, echo-delay bound, per-round spam limit,
      quarantine.)
   2. [admit]   — is its rate statistically compatible with what the
      rest of the group recently reported?  (median/MAD screen in log10
      space, with a ratio fallback below quorum.)  Non-admitted reports
      must not lower the rate or capture the CLR.
   3. [may_switch] — even if admissible, is a CLR *switch* allowed right
      now?  (hysteresis + exponential hold-down flap damping.)

   Receivers that repeatedly fail 1 or 2 accumulate suspicion (decayed
   once per feedback round) and are quarantined outright once it crosses
   the threshold. *)

type reject =
  | Quarantined
  | Spam
  | Implausible_rtt
  | Implausible_rate
  | Implausible_xrecv
  | Implausible_echo_delay

let reject_name = function
  | Quarantined -> "quarantined"
  | Spam -> "spam"
  | Implausible_rtt -> "implausible-rtt"
  | Implausible_rate -> "implausible-rate"
  | Implausible_xrecv -> "implausible-xrecv"
  | Implausible_echo_delay -> "implausible-echo-delay"

type rx_state = {
  mutable suspicion : float;
  mutable quarantined_until : float;
  mutable round_reports : int;  (* reports seen in [round_of_count] *)
  mutable round_of_count : int;
  mutable first_seen : float;  (* time of the first screened report ever *)
  mutable last_seen : float;  (* time of the last screened report *)
  mutable rate_log : float;  (* log10 of the last admitted rate *)
  mutable last_admitted : float;  (* time of the last admitted report *)
  mutable probation_until : float;  (* no CLR candidacy after quarantine *)
  mutable quarantine_count : int;
  mutable in_window : bool;
}

(* Sending-rate ceiling over the last few rounds: x_recv claims are
   checked against the highest recent rate, not the instantaneous one, so
   an honest receiver still draining a pre-decrease burst is not flagged. *)
let ceiling_rounds = 4

type t = {
  cfg : Config.t;
  states : (int, rx_state) Hashtbl.t;
  recent_rates : float array;  (* per-round sending-rate ring *)
  mutable recent_idx : int;
  mutable holddown_until : float;
  mutable holddown_rounds : float;
  mutable last_switch : float;
  (* counters (mirrored into the metrics registry) *)
  mutable implausible_n : int;
  mutable outliers_n : int;
  mutable spam_n : int;
  mutable quarantined_drops_n : int;
  mutable quarantines_n : int;
  mutable damped_n : int;
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_implausible : Obs.Metrics.Counter.t;
  m_outliers : Obs.Metrics.Counter.t;
  m_spam : Obs.Metrics.Counter.t;
  m_quarantined_drops : Obs.Metrics.Counter.t;
  m_quarantines : Obs.Metrics.Counter.t;
  m_damped : Obs.Metrics.Counter.t;
}

let create ~cfg ~obs ~session ~node () =
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("session", string_of_int session) ] in
  {
    cfg;
    states = Hashtbl.create 64;
    recent_rates = Array.make ceiling_rounds 0.;
    recent_idx = 0;
    holddown_until = neg_infinity;
    holddown_rounds = cfg.Config.defense_holddown_rounds;
    last_switch = neg_infinity;
    implausible_n = 0;
    outliers_n = 0;
    spam_n = 0;
    quarantined_drops_n = 0;
    quarantines_n = 0;
    damped_n = 0;
    obs;
    scope = Obs.Journal.scope ~session ~node "tfmcc.defense";
    m_implausible =
      Obs.Metrics.counter metrics ~labels "tfmcc_defense_implausible_total";
    m_outliers = Obs.Metrics.counter metrics ~labels "tfmcc_defense_outliers_total";
    m_spam = Obs.Metrics.counter metrics ~labels "tfmcc_defense_spam_drops_total";
    m_quarantined_drops =
      Obs.Metrics.counter metrics ~labels "tfmcc_defense_quarantined_drops_total";
    m_quarantines =
      Obs.Metrics.counter metrics ~labels "tfmcc_defense_quarantines_total";
    m_damped =
      Obs.Metrics.counter metrics ~labels "tfmcc_defense_clr_damped_total";
  }

let implausible_rejects t = t.implausible_n

let outlier_rejects t = t.outliers_n

let spam_drops t = t.spam_n

let quarantined_drops t = t.quarantined_drops_n

let quarantines t = t.quarantines_n

let clr_switches_damped t = t.damped_n

let jnl t ~now ?severity ev =
  Obs.Sink.event t.obs ~time:now ?severity t.scope ev

let state t rx =
  match Hashtbl.find_opt t.states rx with
  | Some s -> s
  | None ->
      let s =
        {
          suspicion = 0.;
          quarantined_until = neg_infinity;
          round_reports = 0;
          round_of_count = min_int;
          first_seen = infinity;
          last_seen = neg_infinity;
          rate_log = 0.;
          last_admitted = neg_infinity;
          probation_until = neg_infinity;
          quarantine_count = 0;
          in_window = false;
        }
      in
      Hashtbl.add t.states rx s;
      s

let is_quarantined t ~now rx =
  match Hashtbl.find_opt t.states rx with
  | Some s -> now < s.quarantined_until
  | None -> false

let suspicion t rx =
  match Hashtbl.find_opt t.states rx with Some s -> s.suspicion | None -> 0.

(* One point of suspicion per rejected report; quarantine at the
   threshold.  The score decays per round (see [on_round]) so sporadic
   honest anomalies wash out while a sustained attacker does not. *)
let suspect t ~now ~round_duration rx =
  let s = state t rx in
  s.suspicion <- s.suspicion +. 1.;
  if s.suspicion >= t.cfg.Config.defense_suspicion_threshold
     && now >= s.quarantined_until
  then begin
    let until_ =
      now +. (t.cfg.Config.defense_quarantine_rounds *. round_duration)
    in
    s.quarantined_until <- until_;
    (* After release the receiver may report again, but it stays barred
       from CLR candidacy for a probation that doubles with every repeat
       offense — a cyclic attacker gets one capture attempt per
       exponentially growing interval, not one per quarantine. *)
    s.quarantine_count <- s.quarantine_count + 1;
    let scale = Float.of_int (1 lsl Stdlib.min 16 (s.quarantine_count - 1)) in
    s.probation_until <-
      until_
      +. (scale *. t.cfg.Config.defense_quarantine_rounds *. round_duration);
    s.suspicion <- 0.;
    s.in_window <- false;
    t.quarantines_n <- t.quarantines_n + 1;
    Obs.Metrics.Counter.inc t.m_quarantines;
    jnl t ~now ~severity:Obs.Journal.Warn (Obs.Journal.Quarantine { rx; until_ })
  end

let reject t ~now ~round_duration ~rx ~counter what =
  (match counter with
  | `Implausible ->
      t.implausible_n <- t.implausible_n + 1;
      Obs.Metrics.Counter.inc t.m_implausible;
      suspect t ~now ~round_duration rx
  | `Spam ->
      t.spam_n <- t.spam_n + 1;
      Obs.Metrics.Counter.inc t.m_spam;
      suspect t ~now ~round_duration rx
  | `Quarantined ->
      t.quarantined_drops_n <- t.quarantined_drops_n + 1;
      Obs.Metrics.Counter.inc t.m_quarantined_drops
  | `Outlier ->
      t.outliers_n <- t.outliers_n + 1;
      Obs.Metrics.Counter.inc t.m_outliers;
      suspect t ~now ~round_duration rx);
  jnl t ~now ~severity:Obs.Journal.Warn
    (Obs.Journal.Defense_reject { rx; what = reject_name what });
  Some what

(* ------------------------------------------------------------ screening *)

let rate_ceiling t ~sender_rate =
  Array.fold_left Float.max sender_rate t.recent_rates

let screen t ~now ~round_duration ~sender_rate ~sender_round ~rx ~rate
    ~have_rtt ~rtt ~p ~x_recv ~has_loss ~echo_delay ~rtt_sample ~is_clr =
  let cfg = t.cfg in
  let s = state t rx in
  if s.first_seen = infinity then s.first_seen <- now;
  if now < s.quarantined_until then
    reject t ~now ~round_duration ~rx ~counter:`Quarantined Quarantined
  else begin
    (* Spam limit.  A non-CLR honest receiver reports at most about once
       per round, so it gets a small per-round budget.  The CLR
       legitimately reports once per *its own* RTT — which early in a
       session can be many times per round (the round length starts from
       a conservative initial RTT) — so a per-round count would quarantine
       an honest CLR.  Instead the CLR's reports must be spaced at least
       half its RTT apart, taking the largest RTT estimate available
       (sender-side echo sample, claimed RTT, or one round-trip's share of
       the feedback round) so a forged low estimate cannot widen the
       budget. *)
    if s.round_of_count <> sender_round then begin
      s.round_of_count <- sender_round;
      s.round_reports <- 0
    end;
    s.round_reports <- s.round_reports + 1;
    let prev_seen = s.last_seen in
    s.last_seen <- now;
    let spamming =
      if is_clr then begin
        let rtt_est =
          let candidates =
            (match rtt_sample with Some r when r > 0. -> [ r ] | _ -> [])
            @ (if have_rtt && rtt > 0. then [ rtt ] else [])
          in
          match candidates with
          | [] -> round_duration /. cfg.Config.round_rtt_factor
          | l -> List.fold_left Float.max 0. l
        in
        now -. prev_seen < 0.5 *. rtt_est
      end
      else s.round_reports > cfg.Config.defense_max_reports_per_round
    in
    if spamming then reject t ~now ~round_duration ~rx ~counter:`Spam Spam
    else if
      (* Claimed echo hold time far beyond a feedback round defeats the
         RTT floor below; honest receivers echo the newest data packet. *)
      echo_delay > cfg.Config.defense_echo_delay_rounds *. round_duration
    then
      reject t ~now ~round_duration ~rx ~counter:`Implausible
        Implausible_echo_delay
    else if
      (* Physical RTT floor: now - echo_ts - echo_delay is a round trip
         the network actually performed; a claimed RTT far below it is a
         lie (a receiver cannot echo a timestamp before receiving it). *)
      have_rtt
      && (match rtt_sample with
         | Some sample -> rtt < cfg.Config.defense_rtt_floor_fraction *. sample
         | None -> false)
    then reject t ~now ~round_duration ~rx ~counter:`Implausible Implausible_rtt
    else if
      (* Nobody receives faster than the sender recently sent. *)
      x_recv > cfg.Config.defense_xrecv_slack *. rate_ceiling t ~sender_rate
    then
      reject t ~now ~round_duration ~rx ~counter:`Implausible Implausible_xrecv
    else if
      (* Equation consistency: an honest loss report's calculated rate
         IS the TCP model evaluated at its own claimed (rtt, p). *)
      has_loss && have_rtt
      && (p <= 0.
         ||
         let expected =
           Tcp_model.Padhye.throughput ~b:cfg.Config.b
             ~s:cfg.Config.packet_size ~rtt p
         in
         let k = cfg.Config.defense_equation_slack in
         rate > k *. expected || rate *. k < expected)
    then reject t ~now ~round_duration ~rx ~counter:`Implausible Implausible_rate
    else None
  end

(* -------------------------------------------------------- outlier screen *)

let log_rate r = log10 (Float.max 1. r)

(* Median/MAD of the admitted-report window in log10 space.  Returns
   [None] below quorum. *)
let window_stats t ~now ~round_duration =
  let horizon =
    now -. (t.cfg.Config.defense_report_horizon_rounds *. round_duration)
  in
  let logs =
    Hashtbl.fold
      (fun _ s acc ->
        if s.in_window && s.last_admitted >= horizon then s.rate_log :: acc
        else acc)
      t.states []
  in
  if List.length logs < t.cfg.Config.defense_mad_min_reports then None
  else begin
    let arr = Array.of_list logs in
    let med = Stats.Descriptive.median arr in
    let dev = Array.map (fun x -> Float.abs (x -. med)) arr in
    let mad =
      Float.max t.cfg.Config.defense_mad_floor (Stats.Descriptive.median dev)
    in
    Some (med, mad)
  end

(* Admit a screened report into the reference window — unless its rate is
   a low outlier against the group, in which case the caller must not let
   it lower the rate or capture the CLR.  The current CLR is subject to
   the test like everyone else: a receiver that turns hostile *after*
   winning the election must not be able to drag the group further than
   the outlier band either. *)
let admit t ~now ~round_duration ~sender_rate ~rx ~rate =
  let s = state t rx in
  let lr = log_rate rate in
  let outlier =
    match window_stats t ~now ~round_duration with
    | Some (med, mad) -> med -. lr > t.cfg.Config.defense_mad_threshold *. mad
    | None ->
        (* Below quorum: fall back to a coarse ratio test against the
           recent sending rate — the one number the sender knows the
           group genuinely sustained. *)
        rate *. t.cfg.Config.defense_drop_ratio < rate_ceiling t ~sender_rate
  in
  if outlier then begin
    ignore (reject t ~now ~round_duration ~rx ~counter:`Outlier Implausible_rate);
    false
  end
  else begin
    s.rate_log <- lr;
    s.last_admitted <- now;
    s.in_window <- true;
    true
  end

(* Track-record gate on CLR candidacy: leading the session requires
   first contact at least most of a round ago, plus a clean
   quarantine/probation record.  A brand-new receiver cannot capture
   the CLR with its first utterance; the price for honest newcomers is
   one extra feedback round before they can redirect the session.  Age
   is measured from first contact, not from an earlier admitted report:
   under feedback suppression an honest receiver may well be speaking
   for the very first time when it volunteers. *)
let may_lead t ~now ~round_duration rx =
  let s = state t rx in
  now >= s.quarantined_until
  && now >= s.probation_until
  && s.first_seen <= now -. (0.9 *. round_duration)

(* ---------------------------------------------------------- flap damping *)

(* Hysteresis: a takeover must undercut the current rate by a real
   margin.  Hold-down: switches inside the hold-down window are damped;
   each accepted switch that lands inside the previous window doubles the
   next hold-down (capped), so an oscillating attacker is frozen out
   exponentially while a stable group pays one round of latency. *)
let may_switch t ~now ~sender_rate ~candidate_rate ~rx =
  let cfg = t.cfg in
  if candidate_rate >= (1. -. cfg.Config.defense_clr_hysteresis) *. sender_rate
  then begin
    t.damped_n <- t.damped_n + 1;
    Obs.Metrics.Counter.inc t.m_damped;
    jnl t ~now (Obs.Journal.Clr_damped { rx });
    false
  end
  else if now < t.holddown_until then begin
    t.damped_n <- t.damped_n + 1;
    Obs.Metrics.Counter.inc t.m_damped;
    jnl t ~now (Obs.Journal.Clr_damped { rx });
    false
  end
  else true

let note_switch t ~now ~round_duration =
  let cfg = t.cfg in
  let base = cfg.Config.defense_holddown_rounds in
  (* Inside the previous hold-down's *span* (i.e. switches coming as fast
     as damping allows): escalate.  Quiet since then: relax to base. *)
  let span = t.holddown_rounds *. round_duration in
  if now -. t.last_switch <= 2. *. span then
    t.holddown_rounds <-
      Float.min cfg.Config.defense_holddown_max_rounds (2. *. t.holddown_rounds)
  else t.holddown_rounds <- base;
  t.last_switch <- now;
  t.holddown_until <- now +. (t.holddown_rounds *. round_duration)

(* -------------------------------------------------------------- rounds *)

let on_round t ~now ~round_duration ~sender_rate =
  t.recent_rates.(t.recent_idx) <- sender_rate;
  t.recent_idx <- (t.recent_idx + 1) mod ceiling_rounds;
  let horizon =
    now -. (t.cfg.Config.defense_report_horizon_rounds *. round_duration)
  in
  Hashtbl.iter
    (fun _ s ->
      s.suspicion <- s.suspicion *. t.cfg.Config.defense_suspicion_decay;
      if s.last_admitted < horizon then s.in_window <- false)
    t.states
