(** TFMCC receiver.

    Measures the loss event rate (WALI, App. B initialization), its RTT
    (initial value, echo measurements, one-way adjustments) and receive
    rate, computes the TCP-friendly calculated rate from the control
    equation, and takes part in the biased feedback rounds: timers drawn
    per §2.5.1, cancellation per §2.5.2, CLR duty (immediate periodic
    reports) when elected, slowstart receive-rate reports before the
    first loss.

    Runtime-agnostic like the sender: all IO goes through the {!Env.t},
    inbound data packets arrive via {!deliver} from the hosting
    environment. *)

type t

val create :
  env:Env.t ->
  cfg:Config.t ->
  session:int ->
  sender:int ->
  ?report_to:int ->
  ?clock_offset:float ->
  ?ntp_error:float ->
  ?report_flow:int ->
  unit ->
  t
(** The receiver's node id is [env.id]; [sender] is the sender's node
    id.  The receiver does not receive traffic until {!join}.
    [report_to] redirects reports to an aggregation-tree parent instead
    of the sender (§6.1; default the sender itself).  [clock_offset]
    shifts this receiver's local clock to exercise the skew-cancellation
    of §2.4.3 (default 0).  [ntp_error], when given, enables §2.4.1's
    synchronized-clock RTT initialization: the receiver treats its clock
    as synchronized to the sender's within that bound and seeds its RTT
    estimate from the first packet's one-way delay (callers should keep
    [clock_offset] within [ntp_error] for the model to be meaningful).
    [report_flow] is the accounting tag of report packets (default -1).
    Calls [env.split_rng] exactly once. *)

val deliver : t -> size:int -> Wire.msg -> unit
(** Feeds one inbound message to the receiver.  [size] is the on-the-
    wire datagram size in bytes (feeds the receive-rate meter).  Data
    packets of this session are validated and processed; everything
    else is ignored (invalid data of this session counts as malformed
    once joined). *)

val deliver_data : t -> size:int -> Wire.data -> unit
(** {!deliver} for an already-unwrapped data record — the per-packet
    entry for hosts that dispatch on their own payload representation,
    avoiding a [Wire.msg] box per packet. *)

val join : t -> unit
(** Joins the multicast group (idempotent). *)

val leave : t -> ?explicit_leave:bool -> unit -> unit
(** Leaves the group.  With [explicit_leave] (default true) a leave
    report is unicast to the sender so it can react immediately; without
    it the sender must rely on its CLR timeout. *)

val node_id : t -> int

val joined : t -> bool

val calculated_rate : t -> float
(** X_r in bytes/s from the control equation; [infinity] before the first
    loss event. *)

val loss_event_rate : t -> float

val rtt : t -> float

val has_rtt_measurement : t -> bool

val rtt_measurements : t -> int

val rtt_sample_rejections : t -> int
(** Echo RTT samples that arrived non-positive or NaN (clock skew,
    corrupted echo) and were clamped/rejected instead of silently
    discarded; also counted in [check_rtt_sample_rejected_total]. *)

val x_recv : t -> float
(** Receive rate, bytes/s. *)

val is_clr : t -> bool

val has_loss : t -> bool

val packets_received : t -> int

val reports_sent : t -> int

val timers_suppressed : t -> int
(** Feedback timers cancelled by echoed feedback (diagnostic). *)

val malformed_data_dropped : t -> int
(** Inbound data packets of this session rejected before touching any
    receiver state: non-finite timestamps or rates, negative sequence
    numbers or round durations, corrupted echo fields. *)

val set_block_callback : t -> (int -> unit) -> unit
(** Invoked with the application block id of every arriving data packet
    that carries one (the {!Sender.set_block_source} counterpart). *)
