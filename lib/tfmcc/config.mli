(** TFMCC protocol parameters.

    Defaults follow the paper (§2) and, where the paper leaves a constant
    open, RFC 4654.  Every constant that §2.5/§3 discusses as a design
    choice is exposed here so the ablation benches can vary it. *)

(** Feedback-timer biasing method (paper §2.5.1, Figs 1/5/6). *)
type bias =
  | Unbiased  (** plain exponential timers, Eq. (2) *)
  | Offset  (** offset by the raw rate ratio, Eq. (3) *)
  | Modified_offset
      (** offset by the ratio truncated to [0.5, 0.9] and renormalized —
          the method TFMCC adopts *)
  | Modified_n  (** shrink the receiver-set bound N with the ratio *)

type t = {
  packet_size : int;  (** s, bytes; default 1000 *)
  n_intervals : int;  (** WALI depth; default 8 *)
  rtt_initial : float;  (** initial RTT estimate, s; default 0.5 *)
  ewma_clr : float;  (** RTT EWMA gain for the CLR; 0.05 *)
  ewma_other : float;  (** RTT EWMA gain for non-CLR receivers; 0.5 *)
  ewma_oneway : float;
      (** gain for one-way-delay adjustments; 0.005 — applied per data
          packet, so it must be far below the per-measurement gains or
          transient queueing delay sweeps straight into the calculated
          rate *)
  round_rtt_factor : float;
      (** T = round_rtt_factor · R_max; default 6, so that the effective
          suppression window T' = (1-δ)·T is the 4 RTTs that §2.5.4's
          analysis calls for *)
  round_min_packets : int;
      (** k: T also ≥ (k+1)·s/X_send so the echo can outrun suppression at
          low rates (§2.5.3); default 3 *)
  bias : bias;  (** default Modified_offset *)
  fb_delta : float;  (** δ, fraction of T used for the rate offset; 1/3 *)
  n_estimate : int;  (** N, assumed receiver-set bound; 10,000 *)
  zeta : float;  (** ζ, feedback cancellation threshold; 0.1 *)
  clr_timeout_rounds : float;
      (** drop the CLR after this many feedback delays of silence; 10 *)
  starvation_rounds : float;
      (** feedback starvation: when *no* receiver at all has been heard
          for this many feedback rounds the sender enters a bounded rate
          decay instead of free-running — the multicast analogue of
          TFRC's no-feedback timer (partition, total report loss, or an
          empty group); default 2 *)
  starvation_decay : float;
      (** multiplicative rate decay applied once per feedback round while
          starved, down to the one-packet floor; default 0.5 (halving,
          as TFRC's no-feedback rule) *)
  slowstart_multiplier : float;  (** d: target = d · min X_recv; 2 *)
  increase_limit_packets : float;
      (** rate increase cap after a CLR switch, packets per RTT; 1 *)
  use_suppression : bool;
      (** when false, receivers ignore echoed feedback (no timer
          cancellation) — for deployments where an aggregation tree
          (§6.1, {!Aggregator}) absorbs the feedback volume instead *)
  remodel_on_first_rtt : bool;
      (** App. A's full loss-history remodel (re-aggregating logged loss
          gaps with the measured RTT) instead of only rescaling the
          synthetic first interval; default false (the simpler correction
          is what the calibrated figures use) *)
  remember_clr : bool;  (** keep the previous CLR for fast switch-back (App. C) *)
  remember_clr_rtts : float;  (** how long, in CLR RTTs; a few *)
  defense_enabled : bool;
      (** master switch for the adversarial-receiver defenses below
          (plausibility filtering, outlier rejection, CLR flap damping,
          suspicion/quarantine — see DESIGN.md §10).  Default false:
          with it off every knob below is inert and the protocol behaves
          exactly as the paper describes. *)
  defense_equation_slack : float;
      (** plausibility: a loss report's calculated rate may deviate from
          the TCP equation evaluated at its own claimed (rtt, p) by at
          most this factor either way; > 1.  Default 4 (the equation and
          a receiver's WALI/EWMA estimators legitimately disagree by a
          small factor, never by orders of magnitude) *)
  defense_rtt_floor_fraction : float;
      (** plausibility: claimed RTT must be at least this fraction of the
          sender-side RTT sample (now - echo_ts - echo_delay), which is a
          physically observable floor the receiver cannot deflate without
          inflating echo_delay; (0,1], default 0.25 *)
  defense_xrecv_slack : float;
      (** plausibility: claimed x_recv must not exceed this multiple of
          the sender's own sending rate — nobody receives faster than the
          sender sends; >= 1, default 3 (burst tolerance) *)
  defense_echo_delay_rounds : float;
      (** plausibility: claimed echo_delay must be below this many round
          durations (honest receivers echo the newest data packet, held at
          most ~1 round); >= 1, default 4.  Bounds the echo_delay-inflation
          evasion of the RTT floor *)
  defense_mad_threshold : float;
      (** outlier screen: a CLR-capturing report is rejected when its
          log10 rate sits more than this many MADs below the robust
          median of recent reports; > 0, default 5 *)
  defense_mad_floor : float;
      (** outlier screen: MAD floor in log10 decades so a quiet
          (low-variance) group still tolerates honest rate drops;
          > 0, default 0.15 (5 x 0.15 = 0.75 decades ~ 5.6x) *)
  defense_mad_min_reports : int;
      (** outlier screen: distinct receivers required in the recent-report
          window before the MAD screen applies; below it the fallback
          ratio test against the sending rate is used; >= 2, default 4 *)
  defense_drop_ratio : float;
      (** outlier fallback when the window lacks quorum: reject a
          CLR-capturing report more than this factor below the current
          sending rate; > 1, default 30 *)
  defense_report_horizon_rounds : float;
      (** recent-report window for the outlier screen, in feedback
          rounds; >= 1, default 8 *)
  defense_holddown_rounds : float;
      (** CLR flap damping: after an accepted CLR switch further switches
          are held down for this many round durations; must be >= 1 (a
          hold-down shorter than one feedback round cannot damp anything);
          default 1 *)
  defense_holddown_max_rounds : float;
      (** exponential hold-down cap: each switch inside the previous
          hold-down window doubles the next hold-down up to this many
          rounds; >= defense_holddown_rounds, default 8 *)
  defense_clr_hysteresis : float;
      (** a takeover report must undercut the current CLR's rate by this
          relative margin (rate < (1 - h) * clr_rate) so near-equal
          receivers cannot ping-pong the election; [0,1), default 0.05 *)
  defense_max_reports_per_round : int;
      (** spam screen: non-CLR reports from one receiver above this count
          per feedback round are dropped and raise suspicion; >= 1,
          default 4 *)
  defense_suspicion_threshold : float;
      (** quarantine a receiver when its suspicion score (one point per
          rejected report, decayed per round) reaches this; > 0, default 3 *)
  defense_suspicion_decay : float;
      (** multiplicative suspicion decay per feedback round; [0,1),
          default 0.5 *)
  defense_quarantine_rounds : float;
      (** quarantine duration in round durations; > 0, default 20 *)
  b : float;
      (** packets-per-ACK parameter of the control equation; 2, the form
          the paper itself evidently used (its App. A curve peaks at the
          b = 2 value, see Fig. 17) and the value that makes the shared-
          bottleneck fairness of Fig. 9 come out right against our Reno *)
  max_rate : float;  (** hard rate cap, bytes/s (sender's line rate) *)
}

val default : t

val validate : t -> (unit, string) result
(** Checks ranges; used by property tests and the CLI. *)
