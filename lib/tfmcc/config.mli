(** TFMCC protocol parameters.

    Defaults follow the paper (§2) and, where the paper leaves a constant
    open, RFC 4654.  Every constant that §2.5/§3 discusses as a design
    choice is exposed here so the ablation benches can vary it. *)

(** Feedback-timer biasing method (paper §2.5.1, Figs 1/5/6). *)
type bias =
  | Unbiased  (** plain exponential timers, Eq. (2) *)
  | Offset  (** offset by the raw rate ratio, Eq. (3) *)
  | Modified_offset
      (** offset by the ratio truncated to [0.5, 0.9] and renormalized —
          the method TFMCC adopts *)
  | Modified_n  (** shrink the receiver-set bound N with the ratio *)

type t = {
  packet_size : int;  (** s, bytes; default 1000 *)
  n_intervals : int;  (** WALI depth; default 8 *)
  rtt_initial : float;  (** initial RTT estimate, s; default 0.5 *)
  ewma_clr : float;  (** RTT EWMA gain for the CLR; 0.05 *)
  ewma_other : float;  (** RTT EWMA gain for non-CLR receivers; 0.5 *)
  ewma_oneway : float;
      (** gain for one-way-delay adjustments; 0.005 — applied per data
          packet, so it must be far below the per-measurement gains or
          transient queueing delay sweeps straight into the calculated
          rate *)
  round_rtt_factor : float;
      (** T = round_rtt_factor · R_max; default 6, so that the effective
          suppression window T' = (1-δ)·T is the 4 RTTs that §2.5.4's
          analysis calls for *)
  round_min_packets : int;
      (** k: T also ≥ (k+1)·s/X_send so the echo can outrun suppression at
          low rates (§2.5.3); default 3 *)
  bias : bias;  (** default Modified_offset *)
  fb_delta : float;  (** δ, fraction of T used for the rate offset; 1/3 *)
  n_estimate : int;  (** N, assumed receiver-set bound; 10,000 *)
  zeta : float;  (** ζ, feedback cancellation threshold; 0.1 *)
  clr_timeout_rounds : float;
      (** drop the CLR after this many feedback delays of silence; 10 *)
  starvation_rounds : float;
      (** feedback starvation: when *no* receiver at all has been heard
          for this many feedback rounds the sender enters a bounded rate
          decay instead of free-running — the multicast analogue of
          TFRC's no-feedback timer (partition, total report loss, or an
          empty group); default 2 *)
  starvation_decay : float;
      (** multiplicative rate decay applied once per feedback round while
          starved, down to the one-packet floor; default 0.5 (halving,
          as TFRC's no-feedback rule) *)
  slowstart_multiplier : float;  (** d: target = d · min X_recv; 2 *)
  increase_limit_packets : float;
      (** rate increase cap after a CLR switch, packets per RTT; 1 *)
  use_suppression : bool;
      (** when false, receivers ignore echoed feedback (no timer
          cancellation) — for deployments where an aggregation tree
          (§6.1, {!Aggregator}) absorbs the feedback volume instead *)
  remodel_on_first_rtt : bool;
      (** App. A's full loss-history remodel (re-aggregating logged loss
          gaps with the measured RTT) instead of only rescaling the
          synthetic first interval; default false (the simpler correction
          is what the calibrated figures use) *)
  remember_clr : bool;  (** keep the previous CLR for fast switch-back (App. C) *)
  remember_clr_rtts : float;  (** how long, in CLR RTTs; a few *)
  b : float;
      (** packets-per-ACK parameter of the control equation; 2, the form
          the paper itself evidently used (its App. A curve peaks at the
          b = 2 value, see Fig. 17) and the value that makes the shared-
          bottleneck fairness of Fig. 9 come out right against our Reno *)
  max_rate : float;  (** hard rate cap, bytes/s (sender's line rate) *)
}

val default : t

val validate : t -> (unit, string) result
(** Checks ranges; used by property tests and the CLI. *)
