(** TFMCC packet formats (pure, transport-independent).

    One multicast data-packet header and one unicast receiver report,
    mirroring §2.4–2.5 of the paper: data packets carry the sender
    timestamp, current rate, feedback-round bookkeeping, one receiver-
    report echo (for RTT measurement) and the lowest report echoed so far
    this round (for suppression).

    This module owns the protocol's message ADT and byte codec and knows
    nothing about any runtime: the simulator wraps {!msg} into its
    packet payload ([Netsim_env]), the real-time runtime serializes it
    with the codec ([Rt]). *)

(** Echo of one receiver's report inside a data packet: lets exactly that
    receiver compute its instantaneous RTT. *)
type echo = {
  rx_id : int;  (** node id of the receiver whose report is echoed *)
  rx_ts : float;  (** the receiver's own timestamp from its report *)
  echo_delay : float;  (** sender hold time between report arrival and echo *)
}

(** Echo of the lowest-rate feedback of the current round, multicast to
    everyone for timer suppression. *)
type fb_echo = {
  fb_rx_id : int;
  fb_rate : float;  (** the reported (possibly sender-adjusted) rate, bytes/s *)
  fb_has_loss : bool;  (** report came from a receiver that has seen loss *)
}

type data = {
  session : int;
  seq : int;
  ts : float;  (** sender clock at transmission *)
  rate : float;  (** current sending rate X_send, bytes/s *)
  round : int;  (** feedback round number *)
  round_duration : float;  (** T for the current round, seconds *)
  max_rtt : float;  (** sender's current R_max estimate *)
  clr : int;  (** node id of the current limiting receiver; -1 if none *)
  in_slowstart : bool;
  echo : echo option;
  fb : fb_echo option;
  app : int;
      (** application block id carried by this packet, -1 for filler —
          set through {!Sender.set_block_source} (congestion control
          is payload-agnostic; reliability layers ride on this) *)
}

type report = {
  session : int;
  rx_id : int;
  ts : float;  (** receiver clock at transmission *)
  echo_ts : float;  (** sender timestamp of the newest data packet seen *)
  echo_delay : float;  (** receiver hold time since that packet *)
  rate : float;  (** calculated rate X_r, bytes/s (receive-rate based
                     during slowstart) *)
  have_rtt : bool;  (** [rate] computed from a measured RTT? *)
  rtt : float;  (** receiver's current RTT estimate *)
  p : float;  (** loss event rate (diagnostics) *)
  x_recv : float;  (** measured receive rate, bytes/s *)
  round : int;  (** round this report answers *)
  has_loss : bool;  (** receiver has experienced loss (ends slowstart) *)
  leaving : bool;  (** explicit leave notification *)
}

type msg = Data of data | Report of report

val report_size : int
(** Receiver reports are 40 bytes on the wire. *)

val report_fields_valid :
  rx_id:int ->
  ts:float ->
  echo_ts:float ->
  echo_delay:float ->
  rate:float ->
  rtt:float ->
  p:float ->
  x_recv:float ->
  round:int ->
  bool
(** Field-level sanity of an inbound receiver report: all floats finite,
    [rate]/[x_recv] ≥ 0, [rtt] > 0, [p] ∈ [0,1], [echo_delay] ≥ 0,
    [round] ≥ -1 (a receiver that became CLR before its first feedback
    round legitimately reports round -1).  The sender drops reports that
    fail this (counted by {!Sender.malformed_reports_dropped}); round
    staleness is checked separately against the sender's round counter. *)

val report_valid : report -> bool
(** {!report_fields_valid} on a record ([session]/[have_rtt]/[has_loss]/
    [leaving] carry no field-level constraint). *)

val data_fields_valid :
  seq:int ->
  ts:float ->
  rate:float ->
  round:int ->
  round_duration:float ->
  max_rtt:float ->
  clr:int ->
  echo:echo option ->
  fb:fb_echo option ->
  bool
(** Field-level sanity of an inbound data-packet header; receivers drop
    packets that fail this (counted by
    {!Receiver.malformed_data_dropped}) instead of feeding NaN rates or
    negative round durations into their timers. *)

val data_valid : data -> bool
(** {!data_fields_valid} on a record ([session]/[in_slowstart]/[app]
    carry no field-level constraint). *)

(** {2 Byte codec}

    Little-endian serialization of the two payloads: the real-time
    runtime's on-the-wire format, also used by the robustness suite to
    fuzz the parsing path with raw bytes.  Decoding re-runs the field
    validators, so the contract is: {e any} byte string — random,
    truncated, or a bit-flipped valid encoding — either decodes to a
    payload that passes {!report_fields_valid} / {!data_fields_valid},
    or returns [Error]; it never raises and never yields NaN or
    out-of-range fields.

    Encoding enforces the dual contract at the source: both encoders
    raise [Invalid_argument] if any float field is NaN or infinite — a
    non-finite value would round-trip bit-exactly and only surface as a
    decode rejection at every receiver, so it is refused before it can
    reach the wire. *)

val encoded_report_size : int
(** 82 bytes (the simulator's accounting size {!report_size} models a
    more compact production encoding). *)

val encode_report : report -> bytes

val encode_report_into : bytes -> report -> int
(** Encodes into the first {!encoded_report_size} bytes of a
    caller-owned buffer (scratch reuse: no allocation per frame) and
    returns the number of bytes written.  Raises [Invalid_argument] if
    the buffer is too small or a float field is non-finite. *)

val decode_report : bytes -> (msg, string) result
(** [Ok (Report _)] or a validation error. *)

val encoded_data_size : int
(** 114 bytes; absent echo/fb sections are zero-filled and flag-masked.
    Real transports pad data frames up to the configured packet size;
    {!decode} only reads this header prefix. *)

val encode_data : data -> bytes

val encode_data_into : bytes -> data -> int
(** {!encode_report_into} for data frames: writes (and zero-fills) the
    first {!encoded_data_size} bytes of the caller's buffer, returning
    that length.  Any tail the caller keeps for padding is untouched. *)

val decode_data : bytes -> (msg, string) result
(** [Ok (Data _)] or a validation error.  Accepts trailing padding:
    any frame of at least {!encoded_data_size} bytes whose first
    {!encoded_data_size} bytes form a valid header. *)

val decode : bytes -> (msg, string) result
(** Dispatches on the magic byte: report or data frame. *)

val corrupt_msg : Stats.Rng.t -> msg -> msg
(** Returns a copy of the message with one randomly chosen field
    mangled into a hostile value (NaN, negative, out-of-range, foreign
    session, stale/future round).  Deliberately produces exactly the
    malformed inputs the validators reject, so chaos runs exercise every
    guard; [Netsim_env.corrupt_packet] adapts this to
    [Netsim.Fault.corrupt]'s [mangle] argument and property tests use
    it directly. *)
