type bias = Unbiased | Offset | Modified_offset | Modified_n

type t = {
  packet_size : int;
  n_intervals : int;
  rtt_initial : float;
  ewma_clr : float;
  ewma_other : float;
  ewma_oneway : float;
  round_rtt_factor : float;
  round_min_packets : int;
  bias : bias;
  fb_delta : float;
  n_estimate : int;
  zeta : float;
  clr_timeout_rounds : float;
  starvation_rounds : float;
  starvation_decay : float;
  slowstart_multiplier : float;
  increase_limit_packets : float;
  use_suppression : bool;
  remodel_on_first_rtt : bool;
  remember_clr : bool;
  remember_clr_rtts : float;
  b : float;
  max_rate : float;
}

let default =
  {
    packet_size = 1000;
    n_intervals = 8;
    rtt_initial = 0.5;
    ewma_clr = 0.05;
    ewma_other = 0.5;
    ewma_oneway = 0.005;
    round_rtt_factor = 6.;
    round_min_packets = 3;
    bias = Modified_offset;
    fb_delta = 1. /. 3.;
    n_estimate = 10_000;
    zeta = 0.1;
    clr_timeout_rounds = 10.;
    starvation_rounds = 2.;
    starvation_decay = 0.5;
    slowstart_multiplier = 2.;
    increase_limit_packets = 1.;
    use_suppression = true;
    remodel_on_first_rtt = false;
    remember_clr = false;
    remember_clr_rtts = 4.;
    b = 2.;
    max_rate = 1e9;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.packet_size <= 0 then err "packet_size must be positive"
  else if t.n_intervals < 2 then err "n_intervals must be at least 2"
  else if t.rtt_initial <= 0. then err "rtt_initial must be positive"
  else if not (t.ewma_clr > 0. && t.ewma_clr <= 1.) then err "ewma_clr out of (0,1]"
  else if not (t.ewma_other > 0. && t.ewma_other <= 1.) then err "ewma_other out of (0,1]"
  else if not (t.ewma_oneway > 0. && t.ewma_oneway <= 1.) then
    err "ewma_oneway out of (0,1]"
  else if t.round_rtt_factor < 1. then err "round_rtt_factor must be >= 1"
  else if t.round_min_packets < 0 then err "round_min_packets must be >= 0"
  else if not (t.fb_delta >= 0. && t.fb_delta < 1.) then err "fb_delta out of [0,1)"
  else if t.n_estimate < 2 then err "n_estimate must be >= 2"
  else if not (t.zeta >= 0. && t.zeta <= 1.) then err "zeta out of [0,1]"
  else if t.clr_timeout_rounds <= 0. then err "clr_timeout_rounds must be positive"
  else if t.starvation_rounds <= 0. then err "starvation_rounds must be positive"
  else if not (t.starvation_decay > 0. && t.starvation_decay < 1.) then
    err "starvation_decay out of (0,1)"
  else if t.slowstart_multiplier < 1. then err "slowstart_multiplier must be >= 1"
  else if t.increase_limit_packets <= 0. then err "increase_limit_packets must be positive"
  else if t.b <= 0. then err "b must be positive"
  else if t.max_rate <= 0. then err "max_rate must be positive"
  else Ok ()
