type bias = Unbiased | Offset | Modified_offset | Modified_n

type t = {
  packet_size : int;
  n_intervals : int;
  rtt_initial : float;
  ewma_clr : float;
  ewma_other : float;
  ewma_oneway : float;
  round_rtt_factor : float;
  round_min_packets : int;
  bias : bias;
  fb_delta : float;
  n_estimate : int;
  zeta : float;
  clr_timeout_rounds : float;
  starvation_rounds : float;
  starvation_decay : float;
  slowstart_multiplier : float;
  increase_limit_packets : float;
  use_suppression : bool;
  remodel_on_first_rtt : bool;
  remember_clr : bool;
  remember_clr_rtts : float;
  defense_enabled : bool;
  defense_equation_slack : float;
  defense_rtt_floor_fraction : float;
  defense_xrecv_slack : float;
  defense_echo_delay_rounds : float;
  defense_mad_threshold : float;
  defense_mad_floor : float;
  defense_mad_min_reports : int;
  defense_drop_ratio : float;
  defense_report_horizon_rounds : float;
  defense_holddown_rounds : float;
  defense_holddown_max_rounds : float;
  defense_clr_hysteresis : float;
  defense_max_reports_per_round : int;
  defense_suspicion_threshold : float;
  defense_suspicion_decay : float;
  defense_quarantine_rounds : float;
  b : float;
  max_rate : float;
}

let default =
  {
    packet_size = 1000;
    n_intervals = 8;
    rtt_initial = 0.5;
    ewma_clr = 0.05;
    ewma_other = 0.5;
    ewma_oneway = 0.005;
    round_rtt_factor = 6.;
    round_min_packets = 3;
    bias = Modified_offset;
    fb_delta = 1. /. 3.;
    n_estimate = 10_000;
    zeta = 0.1;
    clr_timeout_rounds = 10.;
    starvation_rounds = 2.;
    starvation_decay = 0.5;
    slowstart_multiplier = 2.;
    increase_limit_packets = 1.;
    use_suppression = true;
    remodel_on_first_rtt = false;
    remember_clr = false;
    remember_clr_rtts = 4.;
    defense_enabled = false;
    defense_equation_slack = 4.;
    defense_rtt_floor_fraction = 0.25;
    defense_xrecv_slack = 3.;
    defense_echo_delay_rounds = 4.;
    defense_mad_threshold = 5.;
    defense_mad_floor = 0.15;
    defense_mad_min_reports = 4;
    defense_drop_ratio = 30.;
    defense_report_horizon_rounds = 8.;
    defense_holddown_rounds = 1.;
    defense_holddown_max_rounds = 8.;
    defense_clr_hysteresis = 0.05;
    defense_max_reports_per_round = 4;
    defense_suspicion_threshold = 3.;
    defense_suspicion_decay = 0.5;
    defense_quarantine_rounds = 20.;
    b = 2.;
    max_rate = 1e9;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.packet_size <= 0 then err "packet_size must be positive"
  else if t.n_intervals < 2 then err "n_intervals must be at least 2"
  else if t.rtt_initial <= 0. then err "rtt_initial must be positive"
  else if not (t.ewma_clr > 0. && t.ewma_clr <= 1.) then err "ewma_clr out of (0,1]"
  else if not (t.ewma_other > 0. && t.ewma_other <= 1.) then err "ewma_other out of (0,1]"
  else if not (t.ewma_oneway > 0. && t.ewma_oneway <= 1.) then
    err "ewma_oneway out of (0,1]"
  else if t.round_rtt_factor < 1. then err "round_rtt_factor must be >= 1"
  else if t.round_min_packets < 0 then err "round_min_packets must be >= 0"
  else if not (t.fb_delta >= 0. && t.fb_delta < 1.) then err "fb_delta out of [0,1)"
  else if t.n_estimate < 2 then err "n_estimate must be >= 2"
  else if not (t.zeta >= 0. && t.zeta <= 1.) then err "zeta out of [0,1]"
  else if t.clr_timeout_rounds <= 0. then err "clr_timeout_rounds must be positive"
  else if t.starvation_rounds <= 0. then err "starvation_rounds must be positive"
  else if not (t.starvation_decay > 0. && t.starvation_decay < 1.) then
    err "starvation_decay out of (0,1)"
  else if t.slowstart_multiplier < 1. then err "slowstart_multiplier must be >= 1"
  else if t.increase_limit_packets <= 0. then err "increase_limit_packets must be positive"
  else if t.b <= 0. then err "b must be positive"
  else if t.max_rate <= 0. then err "max_rate must be positive"
  else if t.defense_equation_slack <= 1. then
    err "defense_equation_slack must be > 1 (a tolerance factor around the TCP equation)"
  else if not (t.defense_rtt_floor_fraction > 0. && t.defense_rtt_floor_fraction <= 1.)
  then err "defense_rtt_floor_fraction out of (0,1]"
  else if t.defense_xrecv_slack < 1. then
    err "defense_xrecv_slack must be >= 1 (receivers cannot receive faster than the sender sends)"
  else if t.defense_echo_delay_rounds < 1. then
    err "defense_echo_delay_rounds must be >= 1 feedback round"
  else if t.defense_mad_threshold <= 0. then
    err "defense_mad_threshold must be positive (it scales the MAD outlier band)"
  else if t.defense_mad_floor <= 0. then
    err "defense_mad_floor must be positive (log10 decades)"
  else if t.defense_mad_min_reports < 2 then
    err "defense_mad_min_reports must be >= 2 (a median needs a population)"
  else if t.defense_drop_ratio <= 1. then
    err "defense_drop_ratio must be > 1"
  else if t.defense_report_horizon_rounds < 1. then
    err "defense_report_horizon_rounds must be >= 1 feedback round"
  else if t.defense_holddown_rounds < 1. then
    err "defense_holddown_rounds must be >= 1: a hold-down shorter than one \
         feedback round cannot damp anything (feedback arrives at most once \
         per round)"
  else if t.defense_holddown_max_rounds < t.defense_holddown_rounds then
    err "defense_holddown_max_rounds must be >= defense_holddown_rounds"
  else if not (t.defense_clr_hysteresis >= 0. && t.defense_clr_hysteresis < 1.)
  then err "defense_clr_hysteresis out of [0,1)"
  else if t.defense_max_reports_per_round < 1 then
    err "defense_max_reports_per_round must be >= 1 (the CLR alone reports every round)"
  else if t.defense_suspicion_threshold <= 0. then
    err "defense_suspicion_threshold must be positive"
  else if not (t.defense_suspicion_decay >= 0. && t.defense_suspicion_decay < 1.)
  then err "defense_suspicion_decay out of [0,1)"
  else if t.defense_quarantine_rounds <= 0. then
    err "defense_quarantine_rounds must be positive"
  else Ok ()
