(** Byzantine receiver strategies for the robustness suite
    (DESIGN.md §10).

    An adversary joins the multicast group, snoops data-packet headers,
    and unicasts forged — but syntactically valid — receiver reports to
    the sender.  Single-rate multicast congestion control follows its
    most-limited receiver, so one consistent liar can capture the whole
    group's rate; these agents reproduce the canonical attacks so the
    {!Defense} layer can be measured against them (experiments
    rob04–rob07). *)

type strategy =
  | Understater of { factor : float }
      (** every round, claim a calculated rate of [factor] × the
          advertised sending rate (with a plausible RTT and a TCP-
          equation-consistent loss rate) — the group-capture attack *)
  | Overstater of { factor : float }
      (** claim no loss ever and a receive rate of [factor] × the
          advertised rate — a congested receiver hiding its losses *)
  | Rtt_liar of { rtt : float; factor : float }
      (** claim RTT [rtt] (forged, typically far below the true path
          RTT) and undercut the advertised rate by [factor] every round;
          the compounding decay captures the CLR election *)
  | Spammer of { factor : float }
      (** immediate feedback on every data packet at [factor] × the
          advertised rate: monopolizes the suppression echo so honest
          receivers cancel their reports *)

val strategy_name : strategy -> string
(** ["understater"], ["overstater"], ["rtt-liar"], ["spammer"]. *)

type t

val create :
  env:Env.t -> cfg:Config.t -> session:int -> sender:int -> strategy:strategy -> unit -> t
(** Joins the session's multicast group immediately ([env.join]);
    snooped data packets arrive via {!deliver}.  Forged reports start
    flowing after {!start}.  Does not consume an RNG stream. *)

val deliver : t -> Wire.msg -> unit
(** Snoops one inbound message: data-packet headers of this session
    update the forged-report state (and trigger a report per strategy
    once started); everything else is ignored. *)

val start : t -> at:float -> unit

val stop : t -> unit

val node_id : t -> int

val strategy : t -> strategy

val reports_sent : t -> int
