let clamp lo hi x = Float.max lo (Float.min hi x)

let normalized_ratio r = (clamp 0.5 0.9 r -. 0.5) /. 0.4

(* max(T'(1 + log_N x), 0) for x ~ U(0,1]. *)
let exponential_part rng ~t ~n_estimate =
  let x = Stats.Rng.uniform_pos rng in
  let v = t *. (1. +. (log x /. log (float_of_int n_estimate))) in
  Float.max 0. v

let draw rng ~bias ~t_max ~delta ~n_estimate ~ratio =
  if t_max <= 0. then invalid_arg "Feedback_timer.draw: t_max must be positive";
  if n_estimate < 2 then invalid_arg "Feedback_timer.draw: n_estimate must be >= 2";
  let ratio = clamp 0. 1. ratio in
  match (bias : Config.bias) with
  | Unbiased -> exponential_part rng ~t:t_max ~n_estimate
  | Offset ->
      (delta *. t_max *. ratio)
      +. exponential_part rng ~t:((1. -. delta) *. t_max) ~n_estimate
  | Modified_offset ->
      (delta *. t_max *. normalized_ratio ratio)
      +. exponential_part rng ~t:((1. -. delta) *. t_max) ~n_estimate
  | Modified_n ->
      let n' = Float.max 2. (float_of_int n_estimate ** ratio) in
      let x = Stats.Rng.uniform_pos rng in
      Float.max 0. (t_max *. (1. +. (log x /. log n')))

(* Real-clock hazard guard (lib/rt): a timer callback that fires late —
   GC pause, scheduler stall, laptop lid — can hand the protocol a round
   window that already collapsed to zero or below; [draw] treats that as
   a programming error and raises, which is right for the simulator but
   would crash a live session over an OS hiccup.  The clamped variant
   substitutes a small positive floor, reports the anomaly, and draws
   normally — identical to [draw] (same RNG consumption) on every valid
   input. *)
let t_max_floor = 1e-3

let draw_clamped rng ~on_anomaly ~bias ~t_max ~delta ~n_estimate ~ratio =
  let t_max =
    if Float.is_finite t_max && t_max > 0. then t_max
    else begin
      on_anomaly ();
      t_max_floor
    end
  in
  draw rng ~bias ~t_max ~delta ~n_estimate ~ratio

let should_cancel ~zeta ~own_rate ~echoed_rate =
  echoed_rate -. own_rate <= zeta *. echoed_rate

let round_duration ~(cfg : Config.t) ~max_rtt ~rate =
  if max_rtt <= 0. then invalid_arg "Feedback_timer.round_duration: max_rtt";
  if rate <= 0. then invalid_arg "Feedback_timer.round_duration: rate";
  Float.max
    (cfg.round_rtt_factor *. max_rtt)
    (float_of_int (cfg.round_min_packets + 1) *. float_of_int cfg.packet_size /. rate)

(* Same guard for [round_duration]: a non-monotonic clock can briefly
   present a zero/negative R_max to a live sender. *)
let round_duration_clamped ~on_anomaly ~(cfg : Config.t) ~max_rtt ~rate =
  let bad v = not (Float.is_finite v) || v <= 0. in
  let max_rtt, rate =
    if bad max_rtt || bad rate then begin
      on_anomaly ();
      ((if bad max_rtt then cfg.rtt_initial else max_rtt),
       if bad rate then float_of_int cfg.packet_size else rate)
    end
    else (max_rtt, rate)
  in
  round_duration ~cfg ~max_rtt ~rate

(* Timer CDF for the unbiased scheme over [0, T']:
   F(y) = N^(y/T' - 1), with an atom of mass 1/N at 0. *)
let expected_messages_uncached ~n ~n_estimate ~delay ~t_suppress =
  if n <= 0 then invalid_arg "Feedback_timer.expected_messages: n must be positive";
  if t_suppress <= 0. then
    invalid_arg "Feedback_timer.expected_messages: t_suppress must be positive";
  if delay < 0. then invalid_arg "Feedback_timer.expected_messages: negative delay";
  let nf = float_of_int n and nn = float_of_int n_estimate in
  let t' = t_suppress in
  let cdf y = if y <= 0. then nn ** ((0. /. t') -. 1.) else nn ** ((y /. t') -. 1.) in
  (* F(y) for y<0 is 0; at y=0 it is the atom 1/N. *)
  let f_below y = if y < 0. then 0. else cdf y in
  if delay >= t' then nf
  else begin
    (* E[M]/n = F(Δ) + ∫_Δ^T' (1 - F(t-Δ))^(n-1) f(t) dt with
       f(t) = ln N / T' · N^(t/T' - 1). *)
    let density t = log nn /. t' *. (nn ** ((t /. t') -. 1.)) in
    let integrand t = ((1. -. f_below (t -. delay)) ** (nf -. 1.)) *. density t in
    let steps = 2000 in
    let h = (t' -. delay) /. float_of_int steps in
    let sum = ref 0. in
    for i = 0 to steps do
      let t = delay +. (float_of_int i *. h) in
      let w = if i = 0 || i = steps then 0.5 else 1. in
      sum := !sum +. (w *. integrand t)
    done;
    let integral = !sum *. h in
    nf *. (cdf delay +. integral)
  end

(* The integral is re-evaluated with identical (n, n_estimate, delay,
   t_suppress) arguments every feedback round (and across the rows of
   Fig. 4), so memoize it.  The cache is domain-local: parallel sweep
   workers each get their own table, so no synchronization is needed and
   results stay deterministic per run. *)
let memo_capacity = 512

let memo : ((int * int * float * float, float) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let expected_messages ~n ~n_estimate ~delay ~t_suppress =
  let tbl = Domain.DLS.get memo in
  let key = (n, n_estimate, delay, t_suppress) in
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = expected_messages_uncached ~n ~n_estimate ~delay ~t_suppress in
      (* Argument validation raised before we got here, so only valid
         entries are cached.  Bound the table so pathological callers
         cannot grow it without limit. *)
      if Hashtbl.length tbl >= memo_capacity then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v
