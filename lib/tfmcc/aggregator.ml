type report = {
  r_rx_id : int;
  r_ts : float;
  r_echo_ts : float;
  r_echo_delay : float;
  r_rate : float;
  r_have_rtt : bool;
  r_rtt : float;
  r_p : float;
  r_x_recv : float;
  r_round : int;
  r_has_loss : bool;
  r_arrival : float;  (* local hold time, added to echo_delay on forward *)
}

type t = {
  env : Env.t;
  session : int;
  parent : int;
  hold : float;
  (* When a config with [defense_enabled] is supplied, reports that are
     inconsistent with the TCP equation at their own claimed (rtt, p)
     are dropped here, before they can displace the subtree's honest
     minimum inside the hold window. *)
  screen_cfg : Config.t option;
  mutable plausibility_rejected_n : int;
  mutable best : report option;
  mutable flush_timer : Env.timer option;
  mutable last_round_forwarded : int;
  mutable last_forwarded : report option;
  mutable reports_in : int;
  mutable reports_out : int;
}

let node_id t = t.env.Env.id

let reports_in t = t.reports_in

let reports_out t = t.reports_out

let plausibility_rejected t = t.plausibility_rejected_n

let plausible t (r : report) =
  match t.screen_cfg with
  | None -> true
  | Some cfg ->
      (not (r.r_has_loss && r.r_have_rtt))
      || r.r_p > 0.
         &&
         let expected =
           Tcp_model.Padhye.throughput ~b:cfg.Config.b
             ~s:cfg.Config.packet_size ~rtt:r.r_rtt r.r_p
         in
         let k = cfg.Config.defense_equation_slack in
         r.r_rate <= k *. expected && r.r_rate *. k >= expected

(* Lower is more restrictive; loss reports dominate rate-only ones. *)
let more_restrictive a b =
  if a.r_has_loss <> b.r_has_loss then a.r_has_loss else a.r_rate < b.r_rate

let forward t (r : report) ~leaving =
  let now = t.env.Env.now () in
  t.env.Env.send
    ~dest:(Env.To_node t.parent)
    ~flow:(-1) ~size:Wire.report_size
    (Wire.Report
       {
         session = t.session;
         rx_id = r.r_rx_id;
         ts = r.r_ts;
         echo_ts = r.r_echo_ts;
         (* Account for the time the report sat in this aggregator so the
            sender-side RTT stays correct. *)
         echo_delay = r.r_echo_delay +. (now -. r.r_arrival);
         rate = r.r_rate;
         have_rtt = r.r_have_rtt;
         rtt = r.r_rtt;
         p = r.r_p;
         x_recv = r.r_x_recv;
         round = r.r_round;
         has_loss = r.r_has_loss;
         leaving;
       });
  t.reports_out <- t.reports_out + 1

let flush t =
  t.flush_timer <- None;
  match t.best with
  | Some r ->
      t.best <- None;
      t.last_round_forwarded <- Stdlib.max t.last_round_forwarded r.r_round;
      t.last_forwarded <- Some r;
      forward t r ~leaving:false
  | None -> ()

(* At most one aggregated report per feedback round reaches the parent —
   a per-hold stream of fresh minima would make the sender track every
   downward fluctuation of the whole subtree (the Section-3 effect, but
   amplified).  A strictly more restrictive late report for the same
   round (e.g. the first loss report after a rate report) is still
   forwarded as an upgrade. *)
let on_report t (r : report) ~leaving =
  t.reports_in <- t.reports_in + 1;
  if leaving then forward t r ~leaving:true
  else if not (plausible t r) then
    t.plausibility_rejected_n <- t.plausibility_rejected_n + 1
  else if
    (* The presumptive CLR of this subtree (the receiver we last spoke
       for) keeps its immediate-feedback privilege: the sender's increase
       path depends on its regular reports. *)
    match t.last_forwarded with
    | Some prev when prev.r_rx_id = r.r_rx_id ->
        t.last_forwarded <- Some r;
        t.last_round_forwarded <- Stdlib.max t.last_round_forwarded r.r_round;
        forward t r ~leaving:false;
        true
    | _ -> false
  then ()
  else if r.r_round > t.last_round_forwarded then begin
    (match t.best with
    | Some cur when not (more_restrictive r cur) -> ()
    | Some _ | None -> t.best <- Some r);
    if t.flush_timer = None then
      t.flush_timer <- Some (t.env.Env.after ~delay:t.hold (fun () -> flush t))
  end
  else begin
    match t.last_forwarded with
    | Some prev when more_restrictive r prev ->
        t.last_forwarded <- Some r;
        forward t r ~leaving:false
    | Some _ -> ()
    | None -> forward t r ~leaving:false
  end

let deliver t msg =
  match msg with
  | Wire.Report r when r.Wire.session = t.session ->
      on_report t
        {
          r_rx_id = r.rx_id;
          r_ts = r.ts;
          r_echo_ts = r.echo_ts;
          r_echo_delay = r.echo_delay;
          r_rate = r.rate;
          r_have_rtt = r.have_rtt;
          r_rtt = r.rtt;
          r_p = r.p;
          r_x_recv = r.x_recv;
          r_round = r.round;
          r_has_loss = r.has_loss;
          r_arrival = t.env.Env.now ();
        }
        ~leaving:r.leaving
  | Wire.Report _ | Wire.Data _ -> ()

let create ~env ~session ~parent ?(hold = 0.2) ?cfg () =
  if hold <= 0. then invalid_arg "Aggregator.create: hold must be positive";
  let screen_cfg =
    match cfg with
    | Some c when c.Config.defense_enabled -> Some c
    | Some _ | None -> None
  in
  {
    env;
    session;
    parent;
    hold;
    screen_cfg;
    plausibility_rejected_n = 0;
    best = None;
    flush_timer = None;
    last_round_forwarded = -1;
    last_forwarded = None;
    reports_in = 0;
    reports_out = 0;
  }
