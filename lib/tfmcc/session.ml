type t = {
  cfg : Config.t;
  session : int;
  sender : Sender.t;
  sender_id : int;
  mutable receivers : Receiver.t list;
}

let create ~sender_env ?(cfg = Config.default) ~session ~receiver_envs
    ?clock_offsets () =
  let offsets =
    match clock_offsets with
    | None -> List.map (fun _ -> 0.) receiver_envs
    | Some l ->
        if List.length l <> List.length receiver_envs then
          invalid_arg "Session.create: clock_offsets length mismatch";
        l
  in
  let sender = Sender.create ~env:sender_env ~cfg ~session () in
  let sender_id = sender_env.Env.id in
  let receivers =
    List.map2
      (fun env clock_offset ->
        Receiver.create ~env ~cfg ~session ~sender:sender_id ~clock_offset ())
      receiver_envs offsets
  in
  { cfg; session; sender; sender_id; receivers }

let start ?(join_receivers = true) t ~at =
  if join_receivers then List.iter Receiver.join t.receivers;
  Sender.start t.sender ~at

let stop t = Sender.stop t.sender

let sender t = t.sender

let receivers t = t.receivers

let receiver t ~node_id =
  List.find (fun r -> Receiver.node_id r = node_id) t.receivers

let add_receiver t ~env ?(clock_offset = 0.) ~join_now () =
  let r =
    Receiver.create ~env ~cfg:t.cfg ~session:t.session ~sender:t.sender_id
      ~clock_offset ()
  in
  t.receivers <- r :: t.receivers;
  if join_now then Receiver.join r;
  r

let session_id t = t.session

let receivers_with_rtt t =
  List.length (List.filter Receiver.has_rtt_measurement t.receivers)

let min_calculated_rate t =
  List.fold_left
    (fun acc r -> Float.min acc (Receiver.calculated_rate r))
    infinity t.receivers

let current_rate t = Sender.rate_bytes_per_s t.sender
