type t = {
  cfg : Config.t;
  clock_offset : float;
  metrics : Obs.Metrics.t;
  mutable rtt : float;
  mutable measured : bool;
  mutable ntp_init : bool;
  mutable count : int;
  mutable rejected : int;
  (* Reverse-path delay estimate (receiver clock minus sender clock
     convention), valid once measured. *)
  mutable d_reverse : float;
  (* High-water mark of local_now samples, for the non-monotonic-clock
     clamp; -inf until the first sample. *)
  mutable last_local_now : float;
  mutable clock_anomalies : int;
  m_rejected : Obs.Metrics.Counter.t;
}

(* Floor for clamped echo samples: a sample driven to zero or below by
   clock skew or a corrupted echo delay carries no usable magnitude, but
   it still proves the echo loop is closed — clamping (rather than
   discarding) lets [measured] flip so the estimator is not stuck on
   rtt_initial forever. *)
let sample_floor = 1e-3

let create ?(metrics = Obs.Metrics.null) ~cfg ~clock_offset () =
  {
    cfg;
    clock_offset;
    metrics;
    rtt = cfg.Config.rtt_initial;
    measured = false;
    ntp_init = false;
    count = 0;
    rejected = 0;
    d_reverse = nan;
    last_local_now = neg_infinity;
    clock_anomalies = 0;
    m_rejected = Obs.Metrics.counter metrics "check_rtt_sample_rejected_total";
  }

let local_time t ~now = now +. t.clock_offset

let estimate t = t.rtt

let has_measurement t = t.measured

let measurements t = t.count

let rejections t = t.rejected

let clock_anomalies t = t.clock_anomalies

(* Real clocks step backwards (NTP slew/step, VM migration); a backward
   [local_now] would make delay terms negative and poison the EWMA.
   Clamp to the high-water mark and count — the counter is registered on
   first use only, so deterministic runs (whose clocks are monotonic by
   construction) never see it in their metrics registry. *)
let guard_local_now t local_now =
  if local_now < t.last_local_now then begin
    t.clock_anomalies <- t.clock_anomalies + 1;
    Obs.Metrics.Counter.inc
      (Obs.Metrics.counter t.metrics
         ~labels:[ ("kind", "rtt-nonmonotonic-now") ]
         "tfmcc_rt_clock_anomaly_total");
    t.last_local_now
  end
  else begin
    t.last_local_now <- local_now;
    local_now
  end

let on_echo t ~local_now ~rx_ts ~echo_delay ~pkt_ts ~is_clr =
  let local_now = guard_local_now t local_now in
  let raw = local_now -. rx_ts -. echo_delay in
  (* Non-positive samples used to be discarded silently, which left
     [measured] unset forever when every echo arrived skewed — the
     receiver then reported rtt_initial for the whole session.  Clamp
     them to a small positive floor instead (the echo loop demonstrably
     closed, only the magnitude is garbage) and count the rejection; NaN
     carries no information at all and is dropped outright. *)
  if Float.is_nan raw then begin
    t.rejected <- t.rejected + 1;
    Obs.Metrics.Counter.inc t.m_rejected
  end
  else begin
    let inst =
      if raw > 0. then raw
      else begin
        t.rejected <- t.rejected + 1;
        Obs.Metrics.Counter.inc t.m_rejected;
        sample_floor
      end
    in
    let alpha =
      if not t.measured then 1.
      else if is_clr then t.cfg.Config.ewma_clr
      else t.cfg.Config.ewma_other
    in
    t.rtt <- (alpha *. inst) +. ((1. -. alpha) *. t.rtt);
    (* Seed the one-way state from this measurement; interim one-way
       adjustments are discarded. *)
    let d_forward = local_now -. pkt_ts in
    t.d_reverse <- inst -. d_forward;
    t.measured <- true;
    t.count <- t.count + 1
  end

let init_from_oneway t ~oneway ~max_error =
  if max_error < 0. then invalid_arg "Rtt_estimator.init_from_oneway: negative error";
  if not t.measured then begin
    let estimate = 2. *. (Float.max 0. oneway +. max_error) in
    if estimate > 0. && estimate < t.rtt then begin
      t.rtt <- estimate;
      t.ntp_init <- true
    end
  end

let ntp_initialized t = t.ntp_init

let on_data t ~local_now ~pkt_ts =
  let local_now = guard_local_now t local_now in
  if t.measured then begin
    let d_forward = local_now -. pkt_ts in
    let inst = t.d_reverse +. d_forward in
    if inst > 0. then begin
      let alpha = t.cfg.Config.ewma_oneway in
      t.rtt <- (alpha *. inst) +. ((1. -. alpha) *. t.rtt)
    end
  end
