(** Convenience wrapper: one TFMCC sender plus its receiver set, with
    aggregate views used by the experiments.  Each endpoint brings its
    own {!Env.t} (its node id, clock, timers and datagram hook), so the
    same wrapper drives the simulator ([Netsim_env.session]) and the
    real-time runtime ([Rt]). *)

type t

val create :
  sender_env:Env.t ->
  ?cfg:Config.t ->
  session:int ->
  receiver_envs:Env.t list ->
  ?clock_offsets:float list ->
  unit ->
  t
(** Builds the sender and one receiver per environment (in list order —
    environments' RNG streams are split in that order).  Receivers are
    created but not joined; {!start} joins them all.  [clock_offsets],
    when given, must match [receiver_envs] in length. *)

val start : ?join_receivers:bool -> t -> at:float -> unit
(** Starts the sender at [at]; joins every receiver first unless
    [join_receivers] is false (experiments that stage joins manually). *)

val stop : t -> unit

val sender : t -> Sender.t

val receivers : t -> Receiver.t list

val receiver : t -> node_id:int -> Receiver.t
(** Raises [Not_found] for unknown ids. *)

val add_receiver :
  t -> env:Env.t -> ?clock_offset:float -> join_now:bool -> unit -> Receiver.t
(** Late join (paper §4.5). *)

val session_id : t -> int
(** The multicast session id supplied at creation (environment adapters
    need it to build further receiver environments for late joins). *)

val receivers_with_rtt : t -> int
(** How many receivers hold a real RTT measurement (Fig. 12's metric). *)

val min_calculated_rate : t -> float
(** Minimum of the receivers' calculated rates; infinity if none has
    loss. *)

val current_rate : t -> float
