(** Receiver-side RTT estimation (paper §2.4).

    Starts from the configured initial value (500 ms).  A real measurement
    happens when the sender echoes this receiver's report: the
    instantaneous RTT is local-now − own-timestamp − sender-hold-time,
    smoothed with an EWMA whose gain depends on whether the receiver is
    the CLR (frequent measurements, gain 0.05) or not (rare measurements,
    gain 0.5).

    Between real measurements the estimate follows one-way-delay
    adjustments (§2.4.3): at measurement time the receiver computes the
    reverse-path delay d_r→s = RTT_inst − d_s→r (both terms include the
    receiver's clock offset, which cancels); on every later data packet
    an up-to-date RTT estimate d_r→s + d'_s→r is formed and folded in
    with a small gain.  When a real measurement arrives, interim one-way
    adjustments are discarded.

    All times fed to this module are in the receiver's local clock; use
    {!local_time} to convert engine time. *)

type t

val create :
  ?metrics:Obs.Metrics.t -> cfg:Config.t -> clock_offset:float -> unit -> t
(** [metrics] (default {!Obs.Metrics.null}) receives the
    [check_rtt_sample_rejected_total] counter: echo samples whose raw
    value was non-positive (clock skew, corrupted echo delay) or NaN. *)

val local_time : t -> now:float -> float
(** Engine time plus this receiver's clock offset. *)

val estimate : t -> float
(** Current estimate (the configured initial value before the first real
    measurement). *)

val has_measurement : t -> bool

val measurements : t -> int
(** Count of real (echo-based) measurements. *)

val rejections : t -> int
(** Echo samples rejected or clamped because the raw value
    [local_now − rx_ts − echo_delay] was non-positive or NaN (skewed
    clock, corrupted echo).  Mirrored in the
    [check_rtt_sample_rejected_total] metric. *)

val clock_anomalies : t -> int
(** [local_now] samples that arrived below an earlier sample — a real
    clock stepping backwards (NTP step, VM migration); the simulator
    never produces one.  The sample is clamped to the high-water mark
    instead of corrupting the delay terms, and counted here and under
    [tfmcc_rt_clock_anomaly_total{kind="rtt-nonmonotonic-now"}] (the
    counter is registered lazily on first anomaly so deterministic runs
    keep their metrics registry unchanged). *)

val on_echo :
  t -> local_now:float -> rx_ts:float -> echo_delay:float -> pkt_ts:float ->
  is_clr:bool -> unit
(** A data packet echoed this receiver's report: [rx_ts] is the timestamp
    this receiver put in the report (local clock), [echo_delay] the
    sender's hold time, [pkt_ts] the data packet's sender timestamp
    (sender clock, used to seed the one-way state).

    A sample whose raw value is non-positive is clamped to a 1 ms floor
    (and counted under {!rejections}) rather than silently discarded:
    the echo proves the measurement loop is closed, and discarding it
    would leave the estimate stuck on the configured initial value for
    as long as the skew persists.  NaN samples are dropped (and
    counted). *)

val on_data : t -> local_now:float -> pkt_ts:float -> unit
(** One-way-delay adjustment from a regular data packet; no-op before the
    first real measurement. *)

val init_from_oneway : t -> oneway:float -> max_error:float -> unit
(** §2.4.1's synchronized-clock initialization: when sender and receiver
    clocks are synchronized to within [max_error] (GPS: ~0; NTP: the
    RTT+dispersion to the stratum-1 server), the first data packet's
    one-way delay yields the conservative first estimate
    RTT = 2·(oneway + max_error).  Only applies before any real
    measurement and only if it is *tighter* than the configured initial
    value; real echo measurements still replace it entirely. *)

val ntp_initialized : t -> bool
