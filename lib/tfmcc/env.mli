(** Execution environment for the TFMCC protocol core.

    The sender, receiver, session, adversary and aggregator modules are
    written against this small record instead of any concrete runtime:
    the same protocol code drives the deterministic simulator
    ([Netsim_env], which implements the hooks on top of
    [Netsim.Engine]/[Netsim.Node]) and the real-time loopback/UDP
    runtime ([Rt], which implements them over a wall-clock event loop
    and a byte codec at the datagram boundary).

    Contract expected from implementations:

    - [now] is a monotonic clock in seconds.  It need not start at zero
      and the protocol must not assume any particular epoch (the
      time-translation property test enforces this).
    - [after]/[at] schedule a callback and return a cancellable timer.
      Callbacks run on the environment's (single) event loop; the
      protocol core is not thread-safe and relies on run-to-completion
      callback semantics.
    - [send] transmits one protocol message.  [size] is the on-the-wire
      datagram size in bytes (data packets are padded to the configured
      packet size; the byte codec's frames are smaller), [flow] an
      accounting tag.  Simulated environments may carry the message by
      value; real transports encode it with {!Wire.encode}.
    - [join]/[leave] manage membership of the session's multicast
      group for this endpoint.
    - [split_rng] derives a fresh deterministic random stream.  Each
      protocol object calls it exactly once at construction, so
      environments can preserve stream assignment across refactors.
    - [obs] is the observability plane (metrics registry + journal). *)

type timer = { cancel : unit -> unit }

(** Datagram destination: the session's multicast group, or one
    endpoint (receiver reports, aggregation-tree forwarding). *)
type dest = To_group | To_node of int

type t = {
  id : int;  (** this endpoint's node/endpoint id *)
  now : unit -> float;
  after : delay:float -> (unit -> unit) -> timer;
  after_unit : delay:float -> (unit -> unit) -> unit;
      (** Fire-and-forget [after]: no timer handle, so the runtime can
          recycle the event record (zero allocation in the steady state).
          Callbacks that may outlive their purpose guard themselves
          (generation counter or running flag) instead of cancelling. *)
  at : time:float -> (unit -> unit) -> timer;
  send : dest:dest -> flow:int -> size:int -> Wire.msg -> unit;
  join : unit -> unit;
  leave : unit -> unit;
  split_rng : unit -> Stats.Rng.t;
  obs : Obs.Sink.t;
}

val cancel_opt : timer option -> timer option
(** Cancels the timer if present; always returns [None] (the idiom used
    for [mutable t.xxx_timer <- cancel_opt t.xxx_timer]). *)

val clock_anomaly : t -> kind:string -> unit
(** Counts one real-clock hazard (non-monotonic sample, late timer
    callback) under [tfmcc_rt_clock_anomaly_total{kind=...}].  The
    counter is registered lazily on the first anomaly, so deterministic
    environments that never produce one leave the metrics registry —
    and therefore the golden-trace digests — untouched. *)

val monotonic_clock : ?on_anomaly:(float -> unit) -> (unit -> float) -> unit -> float
(** Wraps a raw clock into a monotonic one: a sample below the previous
    maximum is clamped to that maximum and reported to [on_anomaly]
    with the regression magnitude in seconds.  Real-time environments
    build their [now] from this (wall clocks step backwards under NTP
    slew/step); the simulator's event clock is monotonic by
    construction and does not need it. *)
