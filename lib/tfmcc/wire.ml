type echo = { rx_id : int; rx_ts : float; echo_delay : float }

type fb_echo = { fb_rx_id : int; fb_rate : float; fb_has_loss : bool }

type data = {
  session : int;
  seq : int;
  ts : float;
  rate : float;
  round : int;
  round_duration : float;
  max_rtt : float;
  clr : int;
  in_slowstart : bool;
  echo : echo option;
  fb : fb_echo option;
  app : int;
}

type report = {
  session : int;
  rx_id : int;
  ts : float;
  echo_ts : float;
  echo_delay : float;
  rate : float;
  have_rtt : bool;
  rtt : float;
  p : float;
  x_recv : float;
  round : int;
  has_loss : bool;
  leaving : bool;
}

type msg = Data of data | Report of report

let report_size = 40

(* ------------------------------------------------------------ validation *)

(* A corrupted report must never poison sender state: every float field
   the sender feeds into its rate machinery has to be finite and inside
   its physical range.  Round plausibility (stale/future) is checked by
   the sender against its own round counter. *)
let report_fields_valid ~rx_id ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p ~x_recv
    ~round =
  rx_id >= 0
  && Float.is_finite ts
  && Float.is_finite echo_ts
  && Float.is_finite echo_delay
  && echo_delay >= 0.
  && Float.is_finite rate
  && rate >= 0.
  && Float.is_finite rtt
  && rtt > 0.
  && (not (Float.is_nan p))
  && p >= 0.
  && p <= 1.
  && Float.is_finite x_recv
  && x_recv >= 0.
  && round >= -1

let report_valid (r : report) =
  report_fields_valid ~rx_id:r.rx_id ~ts:r.ts ~echo_ts:r.echo_ts
    ~echo_delay:r.echo_delay ~rate:r.rate ~rtt:r.rtt ~p:r.p ~x_recv:r.x_recv
    ~round:r.round

let data_fields_valid ~seq ~ts ~rate ~round ~round_duration ~max_rtt ~clr
    ~echo ~fb =
  seq >= 0
  && Float.is_finite ts
  && Float.is_finite rate
  && rate > 0.
  && round >= 0
  && Float.is_finite round_duration
  && round_duration > 0.
  && Float.is_finite max_rtt
  && max_rtt > 0.
  && clr >= -1
  && (match echo with
     | None -> true
     | Some (e : echo) ->
         e.rx_id >= 0 && Float.is_finite e.rx_ts
         && Float.is_finite e.echo_delay
         && e.echo_delay >= 0.)
  && (match fb with
     | None -> true
     | Some f -> f.fb_rx_id >= 0 && Float.is_finite f.fb_rate && f.fb_rate >= 0.)

let data_valid (d : data) =
  data_fields_valid ~seq:d.seq ~ts:d.ts ~rate:d.rate ~round:d.round
    ~round_duration:d.round_duration ~max_rtt:d.max_rtt ~clr:d.clr ~echo:d.echo
    ~fb:d.fb

(* ----------------------------------------------------------- byte codec *)

(* Serialized receiver report: magic, flags, three 64-bit ints, seven
   IEEE-754 doubles, all little-endian.  [decode_report] re-runs
   [report_fields_valid] so no byte string — random, truncated, or
   bit-flipped — can ever produce a payload the sender would reject. *)

let encoded_report_size = 82

let report_magic = 0x52 (* 'R' *)

let report_flag_mask = 0x07 (* have_rtt | has_loss | leaving *)

(* Encoding is the sender's last chance to catch a non-finite float
   before it reaches the network: a NaN/inf smuggled through the encoder
   would round-trip bit-exactly and only surface as a decode rejection
   at every receiver.  Fail loudly at the source instead. *)
let require_finite ctx name v =
  if not (Float.is_finite v) then
    invalid_arg
      (Printf.sprintf "Wire.%s: non-finite %s (%h)" ctx name v)

let encode_report_into b (r : report) =
  if Bytes.length b < encoded_report_size then
    invalid_arg "Wire.encode_report_into: buffer too small";
  let chk = require_finite "encode_report" in
  chk "ts" r.ts;
  chk "echo_ts" r.echo_ts;
  chk "echo_delay" r.echo_delay;
  chk "rate" r.rate;
  chk "rtt" r.rtt;
  chk "p" r.p;
  chk "x_recv" r.x_recv;
  Bytes.set_uint8 b 0 report_magic;
  let flags =
    (if r.have_rtt then 1 else 0)
    lor (if r.has_loss then 2 else 0)
    lor if r.leaving then 4 else 0
  in
  Bytes.set_uint8 b 1 flags;
  Bytes.set_int64_le b 2 (Int64.of_int r.session);
  Bytes.set_int64_le b 10 (Int64.of_int r.rx_id);
  Bytes.set_int64_le b 18 (Int64.of_int r.round);
  let f off v = Bytes.set_int64_le b off (Int64.bits_of_float v) in
  f 26 r.ts;
  f 34 r.echo_ts;
  f 42 r.echo_delay;
  f 50 r.rate;
  f 58 r.rtt;
  f 66 r.p;
  f 74 r.x_recv;
  encoded_report_size

let encode_report (r : report) =
  let b = Bytes.create encoded_report_size in
  let (_ : int) = encode_report_into b r in
  b

let decode_report b =
  if Bytes.length b <> encoded_report_size then Error "report: bad length"
  else if Bytes.get_uint8 b 0 <> report_magic then Error "report: bad magic"
  else
    let flags = Bytes.get_uint8 b 1 in
    if flags land lnot report_flag_mask <> 0 then Error "report: unknown flags"
    else
      let i off = Int64.to_int (Bytes.get_int64_le b off) in
      let g off = Int64.float_of_bits (Bytes.get_int64_le b off) in
      let session = i 2 and rx_id = i 10 and round = i 18 in
      let ts = g 26
      and echo_ts = g 34
      and echo_delay = g 42
      and rate = g 50
      and rtt = g 58
      and p = g 66
      and x_recv = g 74 in
      if session < 0 then Error "report: negative session"
      else if
        not
          (report_fields_valid ~rx_id ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p
             ~x_recv ~round)
      then Error "report: invalid fields"
      else
        Ok
          (Report
             {
               session;
               rx_id;
               ts;
               echo_ts;
               echo_delay;
               rate;
               have_rtt = flags land 1 <> 0;
               rtt;
               p;
               x_recv;
               round;
               has_loss = flags land 2 <> 0;
               leaving = flags land 4 <> 0;
             })

(* Serialized data-packet header.  Fixed layout: absent echo/fb sections
   are encoded as zeroes and masked out by the presence flags.  Real
   transports pad the frame out to the configured packet size; decoding
   reads only the header prefix, so any frame ≥ the header size with a
   valid prefix is accepted. *)

let encoded_data_size = 114

let data_magic = 0x44 (* 'D' *)

let data_flag_mask = 0x0f (* in_slowstart | echo? | fb? | fb_has_loss *)

let encode_data_into b (d : data) =
  if Bytes.length b < encoded_data_size then
    invalid_arg "Wire.encode_data_into: buffer too small";
  let chk = require_finite "encode_data" in
  chk "ts" d.ts;
  chk "rate" d.rate;
  chk "round_duration" d.round_duration;
  chk "max_rtt" d.max_rtt;
  (match d.echo with
  | Some e ->
      chk "echo.rx_ts" e.rx_ts;
      chk "echo.echo_delay" e.echo_delay
  | None -> ());
  (match d.fb with
  | Some f -> chk "fb.fb_rate" f.fb_rate
  | None -> ());
  (* Absent echo/fb sections must read as zeroes whatever the buffer
     held before (scratch buffers are reused across frames). *)
  Bytes.fill b 0 encoded_data_size '\000';
  Bytes.set_uint8 b 0 data_magic;
  let flags =
    (if d.in_slowstart then 1 else 0)
    lor (match d.echo with Some _ -> 2 | None -> 0)
    lor (match d.fb with Some _ -> 4 | None -> 0)
    lor match d.fb with Some f when f.fb_has_loss -> 8 | _ -> 0
  in
  Bytes.set_uint8 b 1 flags;
  let i off v = Bytes.set_int64_le b off (Int64.of_int v) in
  let f off v = Bytes.set_int64_le b off (Int64.bits_of_float v) in
  i 2 d.session;
  i 10 d.seq;
  i 18 d.round;
  i 26 d.clr;
  i 34 d.app;
  f 42 d.ts;
  f 50 d.rate;
  f 58 d.round_duration;
  f 66 d.max_rtt;
  (match d.echo with
  | Some e ->
      i 74 e.rx_id;
      f 82 e.rx_ts;
      f 90 e.echo_delay
  | None -> ());
  (match d.fb with
  | Some fb ->
      i 98 fb.fb_rx_id;
      f 106 fb.fb_rate
  | None -> ());
  encoded_data_size

let encode_data (d : data) =
  let b = Bytes.create encoded_data_size in
  let (_ : int) = encode_data_into b d in
  b

let decode_data b =
  if Bytes.length b < encoded_data_size then Error "data: bad length"
  else if Bytes.get_uint8 b 0 <> data_magic then Error "data: bad magic"
  else
    let flags = Bytes.get_uint8 b 1 in
    if flags land lnot data_flag_mask <> 0 then Error "data: unknown flags"
    else if flags land 8 <> 0 && flags land 4 = 0 then
      Error "data: fb_has_loss without fb"
    else
      let i off = Int64.to_int (Bytes.get_int64_le b off) in
      let g off = Int64.float_of_bits (Bytes.get_int64_le b off) in
      let session = i 2
      and seq = i 10
      and round = i 18
      and clr = i 26
      and app = i 34
      and ts = g 42
      and rate = g 50
      and round_duration = g 58
      and max_rtt = g 66 in
      let echo =
        if flags land 2 <> 0 then
          Some { rx_id = i 74; rx_ts = g 82; echo_delay = g 90 }
        else None
      in
      let fb =
        if flags land 4 <> 0 then
          Some
            { fb_rx_id = i 98; fb_rate = g 106; fb_has_loss = flags land 8 <> 0 }
        else None
      in
      if session < 0 then Error "data: negative session"
      else if
        not
          (data_fields_valid ~seq ~ts ~rate ~round ~round_duration ~max_rtt
             ~clr ~echo ~fb)
      then Error "data: invalid fields"
      else
        Ok
          (Data
             {
               session;
               seq;
               ts;
               rate;
               round;
               round_duration;
               max_rtt;
               clr;
               in_slowstart = flags land 1 <> 0;
               echo;
               fb;
               app;
             })

let decode b =
  if Bytes.length b < 1 then Error "frame: empty"
  else
    match Bytes.get_uint8 b 0 with
    | m when m = report_magic -> decode_report b
    | m when m = data_magic -> decode_data b
    | _ -> Error "frame: bad magic"

(* ------------------------------------------------------------ corruption *)

(* Mangle one field of a TFMCC message into a hostile value (NaN,
   negative, out-of-range, nonsense round, foreign session).
   Deliberately produces exactly the malformed inputs the validators
   above reject, so chaos runs exercise every guard. *)
let corrupt_msg rng msg =
  let pick n = Stats.Rng.int rng n in
  match msg with
  | Report r -> (
      match pick 9 with
      | 0 -> Report { r with rate = Float.nan }
      | 1 -> Report { r with rate = -1e12 }
      | 2 -> Report { r with rtt = -0.5 }
      | 3 -> Report { r with rtt = Float.nan }
      | 4 -> Report { r with p = 7.5 }
      | 5 -> Report { r with x_recv = Float.neg_infinity }
      | 6 -> Report { r with round = -1000 }
      | 7 -> Report { r with session = r.session + 977 }
      | _ -> Report { r with echo_delay = Float.nan; ts = Float.infinity })
  | Data d -> (
      match pick 7 with
      | 0 -> Data { d with rate = Float.nan }
      | 1 -> Data { d with rate = -4096. }
      | 2 -> Data { d with round_duration = -1. }
      | 3 -> Data { d with max_rtt = Float.nan }
      | 4 -> Data { d with round = -5 }
      | 5 -> Data { d with session = d.session + 977 }
      | _ -> Data { d with ts = Float.nan; clr = -42 })
