type echo = { rx_id : int; rx_ts : float; echo_delay : float }

type fb_echo = { fb_rx_id : int; fb_rate : float; fb_has_loss : bool }

type Netsim.Packet.payload +=
  | Data of {
      session : int;
      seq : int;
      ts : float;
      rate : float;
      round : int;
      round_duration : float;
      max_rtt : float;
      clr : int;
      in_slowstart : bool;
      echo : echo option;
      fb : fb_echo option;
      app : int;
    }
  | Report of {
      session : int;
      rx_id : int;
      ts : float;
      echo_ts : float;
      echo_delay : float;
      rate : float;
      have_rtt : bool;
      rtt : float;
      p : float;
      x_recv : float;
      round : int;
      has_loss : bool;
      leaving : bool;
    }

let report_size = 40

(* ------------------------------------------------------------ validation *)

(* A corrupted report must never poison sender state: every float field
   the sender feeds into its rate machinery has to be finite and inside
   its physical range.  Round plausibility (stale/future) is checked by
   the sender against its own round counter. *)
let report_fields_valid ~rx_id ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p ~x_recv
    ~round =
  rx_id >= 0
  && Float.is_finite ts
  && Float.is_finite echo_ts
  && Float.is_finite echo_delay
  && echo_delay >= 0.
  && Float.is_finite rate
  && rate >= 0.
  && Float.is_finite rtt
  && rtt > 0.
  && (not (Float.is_nan p))
  && p >= 0.
  && p <= 1.
  && Float.is_finite x_recv
  && x_recv >= 0.
  && round >= -1

let data_fields_valid ~seq ~ts ~rate ~round ~round_duration ~max_rtt ~clr
    ~echo ~fb =
  seq >= 0
  && Float.is_finite ts
  && Float.is_finite rate
  && rate > 0.
  && round >= 0
  && Float.is_finite round_duration
  && round_duration > 0.
  && Float.is_finite max_rtt
  && max_rtt > 0.
  && clr >= -1
  && (match echo with
     | None -> true
     | Some e ->
         e.rx_id >= 0 && Float.is_finite e.rx_ts
         && Float.is_finite e.echo_delay
         && e.echo_delay >= 0.)
  && (match fb with
     | None -> true
     | Some f -> f.fb_rx_id >= 0 && Float.is_finite f.fb_rate && f.fb_rate >= 0.)

(* ------------------------------------------------------------ corruption *)

(* Mangle one field of a TFMCC payload into a hostile value (NaN, negative,
   out-of-range, nonsense round, foreign session).  Matches the mangle
   signature of [Netsim.Fault.corrupt]; non-TFMCC payloads pass through
   untouched.  Deliberately produces exactly the malformed inputs the
   validators above reject, so chaos runs exercise every guard. *)
let corrupt_packet rng (pkt : Netsim.Packet.t) =
  let pick n = Stats.Rng.int rng n in
  let payload =
    match pkt.Netsim.Packet.payload with
    | Report r -> (
        match pick 9 with
        | 0 -> Report { r with rate = Float.nan }
        | 1 -> Report { r with rate = -1e12 }
        | 2 -> Report { r with rtt = -0.5 }
        | 3 -> Report { r with rtt = Float.nan }
        | 4 -> Report { r with p = 7.5 }
        | 5 -> Report { r with x_recv = Float.neg_infinity }
        | 6 -> Report { r with round = -1000 }
        | 7 -> Report { r with session = r.session + 977 }
        | _ -> Report { r with echo_delay = Float.nan; ts = Float.infinity })
    | Data d -> (
        match pick 7 with
        | 0 -> Data { d with rate = Float.nan }
        | 1 -> Data { d with rate = -4096. }
        | 2 -> Data { d with round_duration = -1. }
        | 3 -> Data { d with max_rtt = Float.nan }
        | 4 -> Data { d with round = -5 }
        | 5 -> Data { d with session = d.session + 977 }
        | _ -> Data { d with ts = Float.nan; clr = -42 })
    | other -> other
  in
  { pkt with Netsim.Packet.payload }

