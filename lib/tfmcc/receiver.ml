(* All-float record: raw double storage, written on every data packet. *)
type hot = {
  mutable last_ts : float;  (* sender timestamp *)
  mutable last_arrival : float;  (* local clock *)
  mutable sender_rate : float;
  mutable round_duration : float;
  (* App. B bookkeeping: RTT in use when the synthetic interval was made. *)
  mutable rtt_at_first_loss : float;
  mutable rate_at_loss : float;  (* x_recv when the first loss occurred *)
}

type t = {
  env : Env.t;
  cfg : Config.t;
  session : int;
  report_to : int;  (* sender, or an aggregation-tree parent *)
  ntp_error : float option;  (* clock-sync bound for 2.4.1 initialization *)
  report_flow : int;
  rng : Stats.Rng.t;
  rtt_est : Rtt_estimator.t;
  history : Tfrc.Loss_history.t;
  meter : Tfrc.Rate_meter.t;
  mutable joined : bool;
  mutable left : bool;
  (* Snapshot of the newest data packet. *)
  mutable have_data : bool;
  (* Per-packet float state, grouped in an all-float record ([hot]
     below) so the once-per-data-packet updates are raw double stores
     instead of boxing a float each. *)
  hot : hot;
  mutable sender_in_ss : bool;
  mutable sender_clr : int;  (* CLR id from the newest data packet; -1 none *)
  mutable round : int;
  mutable is_clr : bool;
  (* Feedback round state. *)
  mutable fb_timer : Env.timer option;
  mutable fb_round : int;  (* round the pending timer belongs to *)
  mutable clr_timer : Env.timer option;
  mutable received : int;
  mutable reports : int;
  mutable suppressed : int;
  mutable malformed_data : int;
  mutable block_cb : (int -> unit) option;
  (* Observability: journal scope plus registry handles. *)
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_received : Obs.Metrics.Counter.t;
  m_reports : Obs.Metrics.Counter.t;
  m_suppressed : Obs.Metrics.Counter.t;
  m_malformed : Obs.Metrics.Counter.t;
  m_loss_events : Obs.Metrics.Counter.t;
}

let now t = t.env.Env.now ()

let jnl t ?severity ev = Obs.Sink.event t.obs ~time:(now t) ?severity t.scope ev

let node_id t = t.env.Env.id

let joined t = t.joined

let local_now t = Rtt_estimator.local_time t.rtt_est ~now:(now t)

let rtt t = Rtt_estimator.estimate t.rtt_est

let has_rtt_measurement t = Rtt_estimator.has_measurement t.rtt_est

let rtt_measurements t = Rtt_estimator.measurements t.rtt_est

let rtt_sample_rejections t = Rtt_estimator.rejections t.rtt_est

let loss_event_rate t = Tfrc.Loss_history.loss_event_rate t.history

let has_loss t = Tfrc.Loss_history.has_loss t.history

let x_recv t = Tfrc.Rate_meter.rate_bytes_per_s t.meter ~now:(now t)

let calculated_rate t =
  let p = loss_event_rate t in
  if p <= 0. then infinity
  else
    Tcp_model.Padhye.throughput ~b:t.cfg.Config.b ~s:t.cfg.Config.packet_size
      ~rtt:(rtt t) p

let is_clr t = t.is_clr

let packets_received t = t.received

let reports_sent t = t.reports

let timers_suppressed t = t.suppressed

let malformed_data_dropped t = t.malformed_data

(* The rate this receiver would report right now: the calculated rate
   once it has seen loss, the receive rate during slowstart. *)
let report_rate t = if has_loss t then calculated_rate t else x_recv t

let cancel_fb_timer t = t.fb_timer <- Env.cancel_opt t.fb_timer

let cancel_clr_timer t = t.clr_timer <- Env.cancel_opt t.clr_timer

let report_msg t ~leaving =
  let now_local = local_now t in
  let rate = report_rate t in
  let rate =
    if leaving then rate
    else if Float.is_finite rate then rate
    else t.hot.sender_rate
  in
  Wire.Report
    {
      session = t.session;
      rx_id = node_id t;
      ts = now_local;
      echo_ts = t.hot.last_ts;
      echo_delay = now_local -. t.hot.last_arrival;
      rate;
      have_rtt = has_rtt_measurement t;
      rtt = rtt t;
      p = loss_event_rate t;
      x_recv = x_recv t;
      round = t.round;
      has_loss = has_loss t;
      leaving;
    }

let send_report t =
  if t.joined && t.have_data then begin
    t.env.Env.send
      ~dest:(Env.To_node t.report_to)
      ~flow:t.report_flow ~size:Wire.report_size
      (report_msg t ~leaving:false);
    t.reports <- t.reports + 1;
    Obs.Metrics.Counter.inc t.m_reports
  end

let send_leave_report t =
  if t.have_data then
    t.env.Env.send
      ~dest:(Env.To_node t.report_to)
      ~flow:t.report_flow ~size:Wire.report_size
      (report_msg t ~leaving:true)

(* CLR duty: immediate unsuppressed feedback, once per RTT. *)
let rec schedule_clr_report t =
  cancel_clr_timer t;
  let delay = Float.max 1e-3 (rtt t) in
  t.clr_timer <-
    Some
      (t.env.Env.after ~delay (fun () ->
           t.clr_timer <- None;
           if t.is_clr && t.joined then begin
             send_report t;
             schedule_clr_report t
           end))

let become_clr t =
  if not t.is_clr then begin
    t.is_clr <- true;
    jnl t (Obs.Journal.Note "became CLR");
    cancel_fb_timer t;
    send_report t;
    schedule_clr_report t
  end

let stop_being_clr t =
  if t.is_clr then begin
    t.is_clr <- false;
    jnl t (Obs.Journal.Note "ceased being CLR");
    cancel_clr_timer t
  end

(* Would this receiver report at all this round? *)
let wants_to_report t =
  if t.sender_in_ss then
    (* Slowstart: everyone reports its receive rate so the sender can
       track the minimum. *)
    true
  else if not (has_loss t) then
    (* No loss seen: normally silent, but when the sender lost its CLR
       (header advertises clr = -1: leave, timeout, or it is recovering
       from feedback starvation) even loss-free receivers volunteer their
       receive rate so the sender knows the group is still populated and
       the channel alive. *)
    t.sender_clr < 0
  else
    report_rate t < t.hot.sender_rate
    (* The sender lost its CLR (leave/timeout): volunteer so it can pick
       the new limiting receiver instead of ramping blindly. *)
    || t.sender_clr < 0

let bias_ratio t =
  if t.hot.sender_rate <= 0. then 1.
  else begin
    let r = report_rate t /. t.hot.sender_rate in
    Float.max 0. (Float.min 1. r)
  end

let start_round t ~round ~duration =
  t.round <- round;
  t.hot.round_duration <- duration;
  cancel_fb_timer t;
  if (not t.is_clr) && wants_to_report t then begin
    let delay =
      Feedback_timer.draw_clamped t.rng
        ~on_anomaly:(fun () -> Env.clock_anomaly t.env ~kind:"late-timer")
        ~bias:t.cfg.Config.bias ~t_max:duration ~delta:t.cfg.Config.fb_delta
        ~n_estimate:t.cfg.Config.n_estimate ~ratio:(bias_ratio t)
    in
    t.fb_round <- round;
    t.fb_timer <-
      Some
        (t.env.Env.after ~delay (fun () ->
             t.fb_timer <- None;
             (* Re-check: conditions may have improved since round start. *)
             if t.joined && (not t.is_clr) && wants_to_report t then send_report t))
  end

(* Suppression by the lowest feedback echoed so far this round. *)
let consider_suppression t (fb : Wire.fb_echo) =
  if not t.cfg.Config.use_suppression then ()
  else
  match t.fb_timer with
  | None -> ()
  | Some _ ->
      let mine_has_loss = has_loss t in
      (* During slowstart a loss report cannot be suppressed by a
         rate-only report (§2.6). *)
      if mine_has_loss && not fb.fb_has_loss then ()
      else begin
        let cancel =
          (* A pure receive-rate report (slowstart, no loss yet) carries
             no information beyond the minimum already echoed: any echo
             suppresses it.  Loss reports use the ζ rule. *)
          (not mine_has_loss)
          || Feedback_timer.should_cancel ~zeta:t.cfg.Config.zeta
               ~own_rate:(report_rate t) ~echoed_rate:fb.fb_rate
        in
        if cancel then begin
          cancel_fb_timer t;
          t.suppressed <- t.suppressed + 1;
          Obs.Metrics.Counter.inc t.m_suppressed
        end
      end

let on_data t ~size (d : Wire.data) =
  if t.joined then begin
    (match t.block_cb with Some f when d.app >= 0 -> f d.app | _ -> ());
    (* 2.4.1: synchronized clocks give a first RTT estimate from the very
       first packet's one-way delay. *)
    (match t.ntp_error with
    | Some eps when not t.have_data ->
        let oneway = local_now t -. d.ts in
        Rtt_estimator.init_from_oneway t.rtt_est ~oneway ~max_error:eps
    | Some _ | None -> ());
    let now_local = local_now t in
    t.received <- t.received + 1;
    Obs.Metrics.Counter.inc t.m_received;
    t.have_data <- true;
    t.hot.last_ts <- d.ts;
    t.hot.last_arrival <- now_local;
    t.hot.sender_rate <- d.rate;
    t.sender_in_ss <- d.in_slowstart;
    t.sender_clr <- d.clr;
    (* RTT machinery: echo measurement has priority over the one-way
       adjustment from the same packet. *)
    let had_measurement = has_rtt_measurement t in
    (match d.echo with
    | Some e when e.Wire.rx_id = node_id t ->
        Rtt_estimator.on_echo t.rtt_est ~local_now:now_local ~rx_ts:e.Wire.rx_ts
          ~echo_delay:e.Wire.echo_delay ~pkt_ts:d.ts ~is_clr:t.is_clr
    | Some _ | None ->
        Rtt_estimator.on_data t.rtt_est ~local_now:now_local ~pkt_ts:d.ts);
    (* App. B: rescale the synthetic first interval when the first real
       RTT measurement replaces the estimate it was computed with. *)
    if (not had_measurement) && has_rtt_measurement t then begin
      if Tfrc.Loss_history.has_loss t.history && t.hot.rtt_at_first_loss > 0. then begin
        let factor =
          let r = rtt t /. t.hot.rtt_at_first_loss in
          r *. r
        in
        Tfrc.Loss_history.rescale_synthetic t.history ~factor;
        (* App. A's stronger correction: re-aggregate the logged loss gaps
           with the real RTT. *)
        if t.cfg.Config.remodel_on_first_rtt then
          Tfrc.Loss_history.remodel t.history ~rtt:(rtt t)
      end
    end;
    (* Receive rate over a few RTTs.  The post-update RTT estimate is
       read once: every [rtt t] call boxes its float result. *)
    let now = now t in
    let rtt_now = rtt t in
    let window =
      Float.max (2. *. rtt_now)
        (4. *. float_of_int t.cfg.Config.packet_size /. d.rate)
    in
    Tfrc.Rate_meter.set_window t.meter (Float.max 0.05 window);
    Tfrc.Rate_meter.record t.meter ~now ~bytes:size;
    t.hot.rate_at_loss <- Tfrc.Rate_meter.rate_bytes_per_s t.meter ~now;
    (* Loss detection. *)
    let had_loss = Tfrc.Loss_history.has_loss t.history in
    let prev_loss_events = Tfrc.Loss_history.loss_events t.history in
    Tfrc.Loss_history.on_packet t.history ~seq:d.seq ~now ~rtt:rtt_now;
    let new_loss_events =
      Tfrc.Loss_history.loss_events t.history - prev_loss_events
    in
    if new_loss_events > 0 then begin
      Obs.Metrics.Counter.add t.m_loss_events new_loss_events;
      jnl t ~severity:Obs.Journal.Debug
        (Obs.Journal.Loss_event { p = loss_event_rate t })
    end;
    (* First loss while the sender is in slowstart: report within one
       feedback delay (§2.6) even if this round's rate-based timer was
       already suppressed — only other loss reports may suppress it. *)
    if (not had_loss) && Tfrc.Loss_history.has_loss t.history && d.in_slowstart
       && not t.is_clr
    then begin
      cancel_fb_timer t;
      let delay =
        Feedback_timer.draw_clamped t.rng
          ~on_anomaly:(fun () -> Env.clock_anomaly t.env ~kind:"late-timer")
          ~bias:t.cfg.Config.bias ~t_max:d.round_duration
          ~delta:t.cfg.Config.fb_delta ~n_estimate:t.cfg.Config.n_estimate
          ~ratio:0.
      in
      t.fb_round <- d.round;
      t.fb_timer <-
        Some
          (t.env.Env.after ~delay (fun () ->
               t.fb_timer <- None;
               if t.joined && not t.is_clr then send_report t))
    end;
    (* CLR status. *)
    if d.clr = node_id t then become_clr t else stop_being_clr t;
    (* Feedback rounds. *)
    if d.round <> t.round then
      start_round t ~round:d.round ~duration:d.round_duration;
    (match d.fb with
    | Some f when not t.is_clr -> consider_suppression t f
    | Some _ | None -> ())
  end

let create ~env ~cfg ~session ~sender ?report_to ?(clock_offset = 0.)
    ?ntp_error ?(report_flow = -1) () =
  let report_to = Option.value report_to ~default:sender in
  let obs = env.Env.obs in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("session", string_of_int session) ] in
  let rec t =
    lazy
      {
        env;
        cfg;
        session;
        report_to;
        ntp_error;
        report_flow;
        rng = env.Env.split_rng ();
        rtt_est = Rtt_estimator.create ~metrics ~cfg ~clock_offset ();
        history =
          Tfrc.Loss_history.create ~n_intervals:cfg.Config.n_intervals
            ~first_interval:(fun () ->
              let self = Lazy.force t in
              (* App. B: seed from half the receive rate at first loss,
                 remembering the RTT used. *)
              self.hot.rtt_at_first_loss <- Rtt_estimator.estimate self.rtt_est;
              if self.hot.rate_at_loss > 0. then
                Some
                  (Tcp_model.Mathis.initial_loss_interval
                     ~s:cfg.Config.packet_size
                     ~rtt:(Rtt_estimator.estimate self.rtt_est)
                     ~rate:(self.hot.rate_at_loss /. 2.))
              else None)
            ();
        meter = Tfrc.Rate_meter.create ~window:1. ();
        joined = false;
        left = false;
        have_data = false;
        hot =
          {
            last_ts = nan;
            last_arrival = nan;
            sender_rate = float_of_int cfg.Config.packet_size;
            round_duration = cfg.Config.rtt_initial *. cfg.Config.round_rtt_factor;
            rtt_at_first_loss = 0.;
            rate_at_loss = 0.;
          };
        sender_in_ss = true;
        sender_clr = -1;
        round = -1;
        is_clr = false;
        fb_timer = None;
        fb_round = -1;
        clr_timer = None;
        received = 0;
        reports = 0;
        suppressed = 0;
        malformed_data = 0;
        block_cb = None;
        obs;
        scope = Obs.Journal.scope ~session ~node:env.Env.id "tfmcc.receiver";
        m_received =
          Obs.Metrics.counter metrics ~labels
            "tfmcc_receiver_packets_received_total";
        m_reports =
          Obs.Metrics.counter metrics ~labels "tfmcc_receiver_reports_total";
        m_suppressed =
          Obs.Metrics.counter metrics ~labels "tfmcc_receiver_suppressed_total";
        m_malformed =
          Obs.Metrics.counter metrics ~labels
            "tfmcc_receiver_malformed_drops_total";
        m_loss_events =
          Obs.Metrics.counter metrics ~labels "tfmcc_receiver_loss_events_total";
      }
  in
  Lazy.force t

(* Direct entry for hosts that already hold the unwrapped record: skips
   re-boxing the message on the per-packet path. *)
let deliver_data t ~size (d : Wire.data) =
  if d.Wire.session = t.session then begin
    if
      Wire.data_fields_valid ~seq:d.seq ~ts:d.ts ~rate:d.rate ~round:d.round
        ~round_duration:d.round_duration ~max_rtt:d.max_rtt ~clr:d.clr
        ~echo:d.echo ~fb:d.fb
    then on_data t ~size d
    else if t.joined then begin
      t.malformed_data <- t.malformed_data + 1;
      Obs.Metrics.Counter.inc t.m_malformed;
      jnl t ~severity:Obs.Journal.Warn
        (Obs.Journal.Malformed_drop { what = "data-fields" })
    end
  end

let deliver t ~size msg =
  match msg with
  | Wire.Data d -> deliver_data t ~size d
  | Wire.Report _ -> ()

let join t =
  if t.left then invalid_arg "Receiver.join: receiver has left the session";
  if not t.joined then begin
    t.joined <- true;
    jnl t Obs.Journal.Join;
    t.env.Env.join ()
  end

let set_block_callback t f = t.block_cb <- Some f

let leave t ?(explicit_leave = true) () =
  if t.joined then begin
    t.joined <- false;
    t.left <- true;
    jnl t (Obs.Journal.Leave { explicit = explicit_leave });
    cancel_fb_timer t;
    cancel_clr_timer t;
    t.is_clr <- false;
    t.env.Env.leave ();
    if explicit_leave then send_leave_report t
  end
