type timer = { cancel : unit -> unit }

type dest = To_group | To_node of int

type t = {
  id : int;
  now : unit -> float;
  after : delay:float -> (unit -> unit) -> timer;
  (* Fire-and-forget [after]: no timer handle, so the runtime can recycle
     the event record (zero allocation in the steady state).  Callbacks
     that may outlive their purpose must guard themselves (generation
     counter or [running] flag) instead of cancelling. *)
  after_unit : delay:float -> (unit -> unit) -> unit;
  at : time:float -> (unit -> unit) -> timer;
  send : dest:dest -> flow:int -> size:int -> Wire.msg -> unit;
  join : unit -> unit;
  leave : unit -> unit;
  split_rng : unit -> Stats.Rng.t;
  obs : Obs.Sink.t;
}

let cancel_opt = function
  | Some timer ->
      timer.cancel ();
      None
  | None -> None

(* The counter is resolved on first anomaly rather than at startup:
   registration mutates the metrics registry, which is part of the
   golden-trace digest, and deterministic simulator runs never produce a
   clock anomaly — so lazy registration keeps their metrics JSON (and
   the 43 checked-in digests) bit-identical. *)
let clock_anomaly t ~kind =
  Obs.Metrics.Counter.inc
    (Obs.Metrics.counter t.obs.Obs.Sink.metrics
       ~labels:[ ("kind", kind) ]
       "tfmcc_rt_clock_anomaly_total")

let monotonic_clock ?on_anomaly raw =
  let last = ref neg_infinity in
  fun () ->
    let v = raw () in
    if v < !last then begin
      (match on_anomaly with Some f -> f (!last -. v) | None -> ());
      !last
    end
    else begin
      last := v;
      v
    end
