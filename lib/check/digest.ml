type t = { mutable h : int64 }

let offset_basis = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let create () = { h = offset_basis }

let add_char t c =
  t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (Char.code c))) prime

let add_string t s = String.iter (fun c -> add_char t c) s

let to_hex t = Printf.sprintf "%016Lx" t.h

let of_string s =
  let t = create () in
  add_string t s;
  to_hex t
