(** Differential-oracle helpers (DESIGN.md §11).

    The oracles themselves live in [lib/experiments] (they build
    scenarios); this module holds the comparison arithmetic they and the
    property tests share. *)

val relative_error : expected:float -> actual:float -> float
(** [|actual − expected| / max |expected| ε]; 0 when both are 0. *)

val within_tolerance : tolerance:float -> expected:float -> actual:float -> bool
(** [relative_error ≤ tolerance].  NaN inputs are never within
    tolerance. *)

val first_divergence :
  expected:string -> actual:string -> (unit, string) result
(** Byte-identity oracle (checkpoint/resume contract): [Ok ()] iff the
    two strings are equal; otherwise an [Error] naming the first
    differing line (1-based) and both sides' content.  Used to assert
    that a resumed sweep's rendered output equals a from-scratch run's
    byte for byte. *)

val equation_gap :
  b:float -> s:int -> rtt:float -> p:float -> rate:float -> float
(** Relative gap between an observed sending rate and the Padhye
    throughput {!Tcp_model.Padhye.throughput} for the given loss-event
    rate and RTT — the sender-side equation-consistency oracle.
    [infinity] when the equation inputs are degenerate (p ≤ 0 or
    non-finite terms). *)
