(** FNV-1a 64-bit streaming digest.

    Used by the golden-trace regression machinery to fingerprint
    experiment output (series CSV + observability JSON) with a stable,
    dependency-free hash.  Not cryptographic — it only has to be
    deterministic across runs, platforms and [-j N] parallelism, and
    sensitive enough that any behavioural drift flips the digest. *)

type t

val create : unit -> t
(** Fresh digest at the FNV-1a offset basis. *)

val add_string : t -> string -> unit
(** Folds every byte of the string into the running hash. *)

val add_char : t -> char -> unit

val to_hex : t -> string
(** Current hash as 16 lowercase hex digits. *)

val of_string : string -> string
(** One-shot convenience: [to_hex] of a fresh digest fed [s]. *)
