exception Violation of string

(* Relative slack on float comparisons: probes sample mid-computation
   state, and the rate machinery is float arithmetic — a bound violated
   by one ulp is numerical noise, not protocol drift. *)
let slack = 1e-9

type link_counts = {
  offered : int;
  drop_down : int;
  drop_ttl : int;
  drop_queue : int;
  queued : int;
  on_wire : int;
  sent : int;
  drop_loss : int;
  in_flight : int;
  delivered : int;
}

(* ------------------------------------------------------ pure predicates *)

let check_link_conservation c =
  let accounted =
    c.drop_down + c.drop_ttl + c.drop_queue + c.queued + c.on_wire + c.sent
  in
  if c.offered <> accounted then
    Error
      (Printf.sprintf
         "offered=%d <> down=%d + ttl=%d + queue=%d + queued=%d + wire=%d + \
          sent=%d (= %d)"
         c.offered c.drop_down c.drop_ttl c.drop_queue c.queued c.on_wire
         c.sent accounted)
  else
    let delivered_side = c.drop_loss + c.in_flight + c.delivered in
    if c.sent <> delivered_side then
      Error
        (Printf.sprintf
           "sent=%d <> loss=%d + in_flight=%d + delivered=%d (= %d)" c.sent
           c.drop_loss c.in_flight c.delivered delivered_side)
    else Ok ()

let check_loss_event_rate p =
  if Float.is_nan p then Error "loss-event rate is NaN"
  else if p < 0. || p > 1. then
    Error (Printf.sprintf "loss-event rate %g outside [0, 1]" p)
  else Ok ()

let check_rtt rtt =
  if not (Float.is_finite rtt) then
    Error (Printf.sprintf "RTT %g not finite" rtt)
  else if rtt <= 0. then Error (Printf.sprintf "RTT %g not positive" rtt)
  else Ok ()

let check_x_recv x =
  if not (Float.is_finite x) then
    Error (Printf.sprintf "x_recv %g not finite" x)
  else if x < 0. then Error (Printf.sprintf "x_recv %g negative" x)
  else Ok ()

let check_rate_bounds ~x_min ~x_max rate =
  if not (Float.is_finite rate) then
    Error (Printf.sprintf "rate %g not finite" rate)
  else if rate < x_min *. (1. -. slack) then
    Error (Printf.sprintf "rate %g below floor %g" rate x_min)
  else if rate > x_max *. (1. +. slack) then
    Error (Printf.sprintf "rate %g above cap %g" rate x_max)
  else Ok ()

let check_rate_ceiling ~in_slowstart ~starved ~clr_rate ~x_min ~rate =
  match clr_rate with
  | None -> Ok ()
  | Some _ when in_slowstart || starved -> Ok ()
  | Some clr_rate ->
      let ceiling = Float.max clr_rate x_min in
      if rate > ceiling *. (1. +. slack) then
        Error
          (Printf.sprintf
             "rate %g exceeds CLR-implied ceiling %g (clr_rate=%g floor=%g)"
             rate ceiling clr_rate x_min)
      else Ok ()

let check_clr_defined ~round ~reports ~clr_changes ~starved ~has_clr =
  if
    round >= 3 && reports > 0 && clr_changes = 0 && (not starved)
    && not has_clr
  then
    Error
      (Printf.sprintf
         "no CLR ever elected by round %d despite %d accepted reports" round
         reports)
  else Ok ()

let check_time_monotonic ~last ~now =
  if now < last then
    Error (Printf.sprintf "clock moved backwards: %.9f -> %.9f" last now)
  else Ok ()

(* --------------------------------------------------------------- checker *)

type probe = { probe_id : string; probe_run : unit -> (unit, string) result }

type attachment = {
  a_engine : Netsim.Engine.t;
  mutable a_probes : probe list;
}

type t = {
  t_strict : bool;
  interval : float;
  mutable attachments : attachment list;
  mutable violation_count : int;
}

let create ?(strict = false) ?(interval = 0.25) () =
  if interval <= 0. then
    invalid_arg "Check.Invariant.create: interval must be positive";
  { t_strict = strict; interval; attachments = []; violation_count = 0 }

let strict t = t.t_strict

let violations t = t.violation_count

let journal_window journal =
  let entries = Obs.Journal.entries journal in
  let n = List.length entries in
  let keep = 40 in
  let tail = List.filteri (fun i _ -> i >= n - keep) entries in
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter (fun e -> Format.fprintf fmt "%a@." Obs.Journal.pp_entry e) tail;
  Format.pp_print_flush fmt ();
  if Buffer.length buf = 0 then "(journal empty or disabled)\n"
  else Buffer.contents buf

let report_violation t engine ~id ~detail =
  t.violation_count <- t.violation_count + 1;
  let sink = Netsim.Engine.obs engine in
  let now = Netsim.Engine.now engine in
  Obs.Metrics.Counter.inc
    (Obs.Metrics.counter sink.Obs.Sink.metrics
       ~labels:[ ("invariant", id) ]
       "check_violations_total");
  Obs.Sink.event sink ~time:now ~severity:Obs.Journal.Error
    (Obs.Journal.scope "check")
    (Obs.Journal.Note (Printf.sprintf "%s: %s" id detail));
  if t.t_strict then
    raise
      (Violation
         (Printf.sprintf
            "invariant %s violated at t=%.6f: %s\n\
             --- journal window (most recent entries) ---\n\
             %s" id now detail
            (journal_window sink.Obs.Sink.journal)))

let run_probes t att () =
  List.iter
    (fun p ->
      match p.probe_run () with
      | Ok () -> ()
      | Error detail -> report_violation t att.a_engine ~id:p.probe_id ~detail)
    (List.rev att.a_probes)

let attachment_for t engine =
  match List.find_opt (fun a -> a.a_engine == engine) t.attachments with
  | Some a -> a
  | None ->
      let att = { a_engine = engine; a_probes = [] } in
      t.attachments <- att :: t.attachments;
      let samples =
        Obs.Metrics.counter
          (Netsim.Engine.obs engine).Obs.Sink.metrics "check_samples_total"
      in
      Netsim.Engine.every engine ~interval:t.interval (fun () ->
          Obs.Metrics.Counter.inc samples;
          run_probes t att ());
      att

let add_probe t engine ~id run =
  let att = attachment_for t engine in
  att.a_probes <- { probe_id = id; probe_run = run } :: att.a_probes

let watch_custom t engine ~id run = add_probe t engine ~id run

let watch_engine t engine =
  add_probe t engine ~id:"event_queue" (fun () ->
      if Netsim.Engine.queue_consistent engine then Ok ()
      else Error "event heap ill-formed or pending event precedes the clock");
  let last = ref neg_infinity in
  add_probe t engine ~id:"time_monotonic" (fun () ->
      let now = Netsim.Engine.now engine in
      let r = check_time_monotonic ~last:!last ~now in
      last := Float.max !last now;
      r)

let watch_link t engine ?name link =
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "%d->%d"
          (Netsim.Node.id (Netsim.Link.src link))
          (Netsim.Node.id (Netsim.Link.dst link))
  in
  add_probe t engine ~id:"link_conservation" (fun () ->
      let counts =
        {
          offered = Netsim.Link.packets_offered link;
          drop_down = Netsim.Link.drops_down link;
          drop_ttl = Netsim.Link.drops_ttl link;
          drop_queue = Netsim.Link.drops_queue link;
          queued = Netsim.Queue_disc.length (Netsim.Link.queue link);
          on_wire = (if Netsim.Link.busy link then 1 else 0);
          sent = Netsim.Link.packets_sent link;
          drop_loss = Netsim.Link.drops_loss link;
          in_flight = Netsim.Link.packets_in_flight link;
          delivered = Netsim.Link.packets_delivered link;
        }
      in
      match check_link_conservation counts with
      | Ok () -> Ok ()
      | Error d -> Error (Printf.sprintf "link %s: %s" name d))

let watch_session t engine ?(cfg = Tfmcc_core.Config.default) session =
  let open Tfmcc_core in
  let x_min = float_of_int cfg.Config.packet_size /. 64. in
  let x_max = cfg.Config.max_rate in
  add_probe t engine ~id:"rate_bounds" (fun () ->
      let s = Session.sender session in
      check_rate_bounds ~x_min ~x_max (Sender.rate_bytes_per_s s));
  add_probe t engine ~id:"rate_ceiling" (fun () ->
      let s = Session.sender session in
      check_rate_ceiling
        ~in_slowstart:(Sender.in_slowstart s)
        ~starved:(Sender.is_starved s) ~clr_rate:(Sender.clr_rate s) ~x_min
        ~rate:(Sender.rate_bytes_per_s s));
  add_probe t engine ~id:"clr_defined" (fun () ->
      let s = Session.sender session in
      check_clr_defined ~round:(Sender.round s)
        ~reports:(Sender.reports_received s)
        ~clr_changes:(Sender.clr_changes s) ~starved:(Sender.is_starved s)
        ~has_clr:(Sender.clr s <> None));
  let check_receivers f =
    List.fold_left
      (fun acc rx ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match f rx with
            | Ok () -> Ok ()
            | Error d ->
                Error (Printf.sprintf "rx %d: %s" (Receiver.node_id rx) d)))
      (Ok ())
      (Session.receivers session)
  in
  add_probe t engine ~id:"loss_event_rate" (fun () ->
      check_receivers (fun rx -> check_loss_event_rate (Receiver.loss_event_rate rx)));
  add_probe t engine ~id:"rtt" (fun () ->
      check_receivers (fun rx -> check_rtt (Receiver.rtt rx)));
  add_probe t engine ~id:"x_recv" (fun () ->
      check_receivers (fun rx -> check_x_recv (Receiver.x_recv rx)))
