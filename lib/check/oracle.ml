let relative_error ~expected ~actual =
  if expected = 0. && actual = 0. then 0.
  else abs_float (actual -. expected) /. Float.max (abs_float expected) 1e-12

let within_tolerance ~tolerance ~expected ~actual =
  let e = relative_error ~expected ~actual in
  (not (Float.is_nan e)) && e <= tolerance

let equation_gap ~b ~s ~rtt ~p ~rate =
  if
    p <= 0. || p > 1.
    || not (Float.is_finite rtt)
    || rtt <= 0.
    || not (Float.is_finite rate)
  then infinity
  else
    let expected = Tcp_model.Padhye.throughput ~b ~s ~rtt p in
    if not (Float.is_finite expected) then infinity
    else relative_error ~expected ~actual:rate
