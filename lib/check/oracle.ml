let relative_error ~expected ~actual =
  if expected = 0. && actual = 0. then 0.
  else abs_float (actual -. expected) /. Float.max (abs_float expected) 1e-12

let within_tolerance ~tolerance ~expected ~actual =
  let e = relative_error ~expected ~actual in
  (not (Float.is_nan e)) && e <= tolerance

(* Byte-identity oracle for checkpoint/resume: two renderings of a sweep
   must agree byte for byte.  On divergence, report the first differing
   line (1-based) with both sides' content, so a resume bug points
   straight at the offending figure block. *)
let first_divergence ~expected ~actual =
  if String.equal expected actual then Ok ()
  else begin
    let lines s = String.split_on_char '\n' s in
    let le = lines expected and la = lines actual in
    let rec find n le la =
      match (le, la) with
      | [], [] ->
          (* Same lines, unequal strings: only possible via a trailing
             newline difference. *)
          Error (Printf.sprintf "outputs differ only in trailing newline")
      | e :: _, [] ->
          Error
            (Printf.sprintf "line %d: expected %S, actual output ends" n e)
      | [], a :: _ ->
          Error
            (Printf.sprintf "line %d: expected output ends, actual %S" n a)
      | e :: re, a :: ra ->
          if String.equal e a then find (n + 1) re ra
          else
            Error (Printf.sprintf "line %d: expected %S, actual %S" n e a)
    in
    match find 1 le la with
    | Error _ as err -> err
    | Ok () -> Error "outputs differ"
    (* unreachable: unequal strings always diverge somewhere *)
  end

let equation_gap ~b ~s ~rtt ~p ~rate =
  if
    p <= 0. || p > 1.
    || not (Float.is_finite rtt)
    || rtt <= 0.
    || not (Float.is_finite rate)
  then infinity
  else
    let expected = Tcp_model.Padhye.throughput ~b ~s ~rtt p in
    if not (Float.is_finite expected) then infinity
    else relative_error ~expected ~actual:rate
