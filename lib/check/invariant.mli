(** Declarative runtime invariant checker (DESIGN.md §11).

    A checker is a registry of predicates over protocol and simulator
    state, sampled periodically through the engine's own event loop and
    reported through the engine's observability sink: every violation
    increments [check_violations_total{invariant=<id>}], lands in the
    protocol journal as an [Error]-severity note under the ["check"]
    component, and — in strict mode — aborts the run by raising
    {!Violation} with the offending journal window attached.

    Probes are read-only: sampling adds engine events but never touches
    protocol or RNG state, so a checked run follows the exact trajectory
    of an unchecked one.  When no checker is installed nothing is
    scheduled and the cost is zero.

    The pure [check_*] predicates are exposed separately so unit tests
    can exercise each one against violating and non-violating fixtures
    without building a simulation. *)

type t

exception Violation of string
(** Raised (strict mode only) at the sample point that observed the
    violation; the message carries the invariant id, simulated time,
    detail, and the tail of the protocol journal. *)

val create : ?strict:bool -> ?interval:float -> unit -> t
(** [strict] (default false) aborts on first violation; [interval]
    (default 0.25 s) is the sampling period of every probe registered
    through this checker. *)

val strict : t -> bool

val violations : t -> int
(** Violations observed so far across all probes (counted even when not
    strict). *)

val journal_window : Obs.Journal.t -> string
(** The last-40-entry tail of a protocol journal rendered one entry per
    line ({!Obs.Journal.pp_entry}) — the reporting shape strict-mode
    {!Violation} messages carry, shared with the sweep supervisor's
    per-task failure reports.  ["(journal empty or disabled)\n"] when
    there is nothing to show. *)

(** {2 Pure predicates}

    Each returns [Ok ()] or [Error detail].  IDs used in metrics labels:
    [link_conservation], [loss_event_rate], [rtt], [x_recv],
    [rate_bounds], [rate_ceiling], [clr_defined], [time_monotonic],
    [event_queue]. *)

(** A point-in-time reading of one link's conservation ledger
    ({!Netsim.Link.packets_offered} and friends).  [queued] is the
    queue-discipline occupancy, [on_wire] 1 when the line is busy. *)
type link_counts = {
  offered : int;
  drop_down : int;
  drop_ttl : int;
  drop_queue : int;
  queued : int;
  on_wire : int;
  sent : int;
  drop_loss : int;
  in_flight : int;
  delivered : int;
}

val check_link_conservation : link_counts -> (unit, string) result
(** Both identities: [offered = drop_down + drop_ttl + drop_queue +
    queued + on_wire + sent] and [sent = drop_loss + in_flight +
    delivered]. *)

val check_loss_event_rate : float -> (unit, string) result
(** p ∈ [0, 1] and not NaN. *)

val check_rtt : float -> (unit, string) result
(** Finite and strictly positive. *)

val check_x_recv : float -> (unit, string) result
(** Finite and non-negative. *)

val check_rate_bounds : x_min:float -> x_max:float -> float -> (unit, string) result
(** Sending rate within [x_min, x_max] (small relative slack). *)

val check_rate_ceiling :
  in_slowstart:bool ->
  starved:bool ->
  clr_rate:float option ->
  x_min:float ->
  rate:float ->
  (unit, string) result
(** In congestion avoidance with a live CLR and no starvation decay, the
    sending rate never exceeds [max clr_rate x_min] (the CLR's reported
    rate, modulo the one-packet-per-RTT floor).  Vacuously [Ok] in
    slowstart, when starved, or without a CLR. *)

val check_clr_defined :
  round:int ->
  reports:int ->
  clr_changes:int ->
  starved:bool ->
  has_clr:bool ->
  (unit, string) result
(** Once feedback rounds are under way (round ≥ 3) and reports have been
    accepted, a CLR must have been elected at some point — a sender that
    heard receivers but never chose a CLR is drifting from §2.2. *)

val check_time_monotonic : last:float -> now:float -> (unit, string) result
(** [now ≥ last]. *)

(** {2 Probes}

    A probe binds a predicate to live state and runs at every sample
    tick of the engine it was registered against.  Each engine watched
    gets one periodic sampler ([check_samples_total] counts ticks). *)

val watch_engine : t -> Netsim.Engine.t -> unit
(** Event-queue structural audit ({!Netsim.Engine.queue_consistent}) and
    clock monotonicity across sample points. *)

val watch_link : t -> Netsim.Engine.t -> ?name:string -> Netsim.Link.t -> unit
(** Per-link packet conservation.  [name] tags the violation detail. *)

val watch_session :
  t -> Netsim.Engine.t -> ?cfg:Tfmcc_core.Config.t -> Tfmcc_core.Session.t -> unit
(** The full TFMCC predicate set: sender rate bounds and equation-implied
    CLR ceiling, CLR liveness, and per-receiver loss-event rate / RTT /
    x_recv sanity (receivers enumerated at each tick, so late joins are
    covered). [cfg] (default {!Tfmcc_core.Config.default}) supplies the
    rate bounds. *)

val watch_custom :
  t -> Netsim.Engine.t -> id:string -> (unit -> (unit, string) result) -> unit
(** Registers an arbitrary read-only predicate under [id]. *)
