type Netsim.Packet.payload +=
  | Nak of { session : int; rx_id : int; missing : int list }

let nak_size = 64

module Int_set = Set.Make (Int)

module Sender = struct
  type t = {
    n : int;
    mutable next_fresh : int;
    mutable repair : int Queue.t;
    mutable queued : Int_set.t;
    mutable repairs : int;
    mutable naks : int;
  }

  let blocks t = t.n

  let first_pass_done t = t.next_fresh >= t.n

  let repair_queue_length t = Queue.length t.repair

  let repairs_sent t = t.repairs

  let naks_received t = t.naks

  let next_block t () =
    match Queue.take_opt t.repair with
    | Some b ->
        t.queued <- Int_set.remove b t.queued;
        t.repairs <- t.repairs + 1;
        b
    | None ->
        if t.next_fresh < t.n then begin
          let b = t.next_fresh in
          t.next_fresh <- t.next_fresh + 1;
          b
        end
        else -1

  let on_nak t missing =
    t.naks <- t.naks + 1;
    List.iter
      (fun b ->
        if b >= 0 && b < t.n && not (Int_set.mem b t.queued) then begin
          t.queued <- Int_set.add b t.queued;
          Queue.push b t.repair
        end)
      missing

  let create tfmcc ~node ~session ~blocks =
    if blocks <= 0 then invalid_arg "Repair.Sender.create: blocks must be positive";
    let t =
      {
        n = blocks;
        next_fresh = 0;
        repair = Queue.create ();
        queued = Int_set.empty;
        repairs = 0;
        naks = 0;
      }
    in
    Tfmcc_core.Sender.set_block_source tfmcc (next_block t);
    Netsim.Node.attach node (fun p ->
        match p.Netsim.Packet.payload with
        | Nak { session = s; rx_id = _; missing } when s = session ->
            on_nak t missing
        | _ -> ());
    t
end

module Receiver = struct
  type t = {
    topo : Netsim.Topology.t;
    engine : Netsim.Engine.t;
    session : int;
    node_id : int;
    sender_id : int;
    n : int;
    nak_interval : float;
    max_nak_ids : int;
    rng : Stats.Rng.t;
    got : Bytes.t;  (* one byte per block; dense and simple *)
    mutable count : int;
    mutable max_seen : int;
    mutable last_progress : float;
    mutable last_nak : float;
    mutable naks : int;
    mutable done_at : float option;
    mutable timer : Netsim.Engine.handle option;
  }

  let received_blocks t = t.count

  let complete t = t.count >= t.n

  let completion_time t = t.done_at

  let naks_sent t = t.naks

  let missing t =
    let rec collect i acc =
      if i < 0 then acc
      else collect (i - 1) (if Bytes.get t.got i = '\000' then i :: acc else acc)
    in
    collect (t.n - 1) []

  let on_block t b =
    if b >= 0 && b < t.n && Bytes.get t.got b = '\000' then begin
      Bytes.set t.got b '\001';
      t.count <- t.count + 1;
      t.max_seen <- Stdlib.max t.max_seen b;
      t.last_progress <- Netsim.Engine.now t.engine;
      if t.count >= t.n && t.done_at = None then
        t.done_at <- Some (Netsim.Engine.now t.engine)
    end
    else if b >= 0 then t.max_seen <- Stdlib.max t.max_seen b

  let send_nak t ids =
    let now = Netsim.Engine.now t.engine in
    let p =
      Netsim.Packet.alloc ~flow:(-1) ~size:nak_size ~src:t.node_id
        ~dst:(Netsim.Packet.Unicast t.sender_id) ~created:now
        (Nak { session = t.session; rx_id = t.node_id; missing = ids })
    in
    Netsim.Topology.inject t.topo p;
    t.naks <- t.naks + 1;
    t.last_nak <- now

  let consider_nak t =
    if not (complete t) then begin
      let now = Netsim.Engine.now t.engine in
      let stalled = now -. t.last_progress > 2. *. t.nak_interval in
      let candidates =
        List.filter (fun b -> stalled || b <= t.max_seen) (missing t)
      in
      let bounded = List.filteri (fun i _ -> i < t.max_nak_ids) candidates in
      if bounded <> [] && now -. t.last_nak >= t.nak_interval then send_nak t bounded
    end

  let rec schedule t =
    let delay = t.nak_interval *. (0.75 +. (0.5 *. Stats.Rng.uniform t.rng)) in
    t.timer <-
      Some
        (Netsim.Engine.after t.engine ~delay (fun () ->
             t.timer <- None;
             if not (complete t) then begin
               consider_nak t;
               schedule t
             end))

  let create topo tfmcc_rx ~sender ~session ~blocks ?(nak_interval = 0.5)
      ?(max_nak_ids = 64) () =
    if blocks <= 0 then invalid_arg "Repair.Receiver.create: blocks must be positive";
    if nak_interval <= 0. then invalid_arg "Repair.Receiver.create: nak_interval";
    if max_nak_ids <= 0 then invalid_arg "Repair.Receiver.create: max_nak_ids";
    let engine = Netsim.Topology.engine topo in
    let t =
      {
        topo;
        engine;
        session;
        node_id = Tfmcc_core.Receiver.node_id tfmcc_rx;
        sender_id = Netsim.Node.id sender;
        n = blocks;
        nak_interval;
        max_nak_ids;
        rng = Netsim.Engine.split_rng engine;
        got = Bytes.make blocks '\000';
        count = 0;
        max_seen = -1;
        last_progress = Netsim.Engine.now engine;
        last_nak = neg_infinity;
        naks = 0;
        done_at = None;
        timer = None;
      }
    in
    Tfmcc_core.Receiver.set_block_callback tfmcc_rx (on_block t);
    schedule t;
    t
end
