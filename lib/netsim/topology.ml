module Int_tbl = Hashtbl.Make (Int)

type t = {
  engine : Engine.t;
  mutable nodes : Node.t array;
  mutable node_count : int;
  (* adjacency.(id) = (neighbor id, outgoing link) in insertion order *)
  mutable adjacency : (int * Link.t) list array;
  links : (int * int, Link.t) Hashtbl.t;
  groups : (int, unit Int_tbl.t) Hashtbl.t;  (* group -> member ids *)
  (* dst id -> parent.(v) = next node from v toward dst (-1 at dst/unreachable) *)
  route_cache : (int, int array) Hashtbl.t;
  (* (group, src) -> node id -> child links *)
  tree_cache : (int * int, Link.t list Int_tbl.t) Hashtbl.t;
  (* One-entry cache in front of [tree_cache]: every data packet of a
     session looks up the same (group, src) tree, so the hot path skips
     the tuple allocation and hashing of the table lookup entirely. *)
  mutable hot_group : int;
  mutable hot_src : int;
  mutable hot_tree : Link.t list Int_tbl.t option;
  (* Scratch for branch-point duplication ([forward_multicast]): clones
     park here between the clone pass and the send pass, so fanning out
     allocates no (link, packet) pair list per packet. *)
  mutable mc_scratch : Packet.t array;
}

let create engine =
  {
    engine;
    nodes = Array.make 16 (Node.create ~id:(-1));
    node_count = 0;
    adjacency = Array.make 16 [];
    links = Hashtbl.create 64;
    groups = Hashtbl.create 8;
    route_cache = Hashtbl.create 64;
    tree_cache = Hashtbl.create 8;
    hot_group = -1;
    hot_src = -1;
    hot_tree = None;
    mc_scratch = Array.make 8 Packet.dummy;
  }

let engine t = t.engine

let node_count t = t.node_count

let node t id =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Topology.node: unknown id %d" id);
  t.nodes.(id)

let invalidate_routes t =
  Hashtbl.reset t.route_cache;
  Hashtbl.reset t.tree_cache;
  t.hot_tree <- None

let invalidate_group_trees t group =
  Hashtbl.to_seq_keys t.tree_cache
  |> Seq.filter (fun (g, _) -> g = group)
  |> List.of_seq
  |> List.iter (Hashtbl.remove t.tree_cache);
  if t.hot_group = group then t.hot_tree <- None

(* BFS rooted at [root]: parent.(v) is the neighbor of v on the shortest
   path from v toward root (-1 for root itself and unreachable nodes).
   Deterministic: neighbors expand in insertion order. *)
let bfs t root =
  let parent = Array.make t.node_count (-1) in
  let visited = Array.make t.node_count false in
  let q = Queue.create () in
  visited.(root) <- true;
  Queue.push root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _link) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          Queue.push v q
        end)
      (List.rev t.adjacency.(u))
  done;
  parent

let parents_toward t dst_id =
  match Hashtbl.find_opt t.route_cache dst_id with
  | Some p -> p
  | None ->
      let p = bfs t dst_id in
      Hashtbl.add t.route_cache dst_id p;
      p

let next_link t ~from_id ~dst_id =
  let parent = parents_toward t dst_id in
  let next = parent.(from_id) in
  if next < 0 then None else Hashtbl.find_opt t.links (from_id, next)

let group_table t group =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g
  | None ->
      let g = Int_tbl.create 16 in
      Hashtbl.add t.groups group g;
      g

let is_member t ~group n =
  match Hashtbl.find t.groups group with
  | g -> Int_tbl.mem g (Node.id n)
  | exception Not_found -> false

let members t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some g ->
      Int_tbl.to_seq_keys g |> List.of_seq |> List.sort compare
      |> List.map (node t)

(* Tree = union over members of the shortest path src -> member.  We walk
   each member toward src using the BFS rooted at src (parent pointers go
   toward src) and record the forward links. *)
let build_tree t ~group ~src_id =
  let children = Int_tbl.create 32 in
  let parent = parents_toward t src_id in
  let on_tree = Int_tbl.create 32 in
  let add_edge u v =
    (* edge u -> v, u is closer to src *)
    match Hashtbl.find_opt t.links (u, v) with
    | None -> ()
    | Some link ->
        let existing = Option.value ~default:[] (Int_tbl.find_opt children u) in
        if not (List.memq link existing) then
          Int_tbl.replace children u (link :: existing)
  in
  let rec walk v =
    (* records path from v up to src (or an already-on-tree node) *)
    if v <> src_id && not (Int_tbl.mem on_tree v) then begin
      Int_tbl.replace on_tree v ();
      let u = parent.(v) in
      if u >= 0 then begin
        add_edge u v;
        walk u
      end
    end
  in
  (match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some g -> Int_tbl.iter (fun m () -> walk m) g);
  children

let tree_children t ~group ~src_id node_id =
  let tree =
    match t.hot_tree with
    | Some tr when t.hot_group = group && t.hot_src = src_id -> tr
    | _ ->
        let key = (group, src_id) in
        let tr =
          match Hashtbl.find_opt t.tree_cache key with
          | Some tr -> tr
          | None ->
              let tr = build_tree t ~group ~src_id in
              Hashtbl.add t.tree_cache key tr;
              tr
        in
        t.hot_group <- group;
        t.hot_src <- src_id;
        t.hot_tree <- Some tr;
        tr
  in
  match Int_tbl.find tree node_id with
  | l -> l
  | exception Not_found -> []

(* The two passes over a branch point's child list.  Top-level (not
   closures) so the per-packet fan-out allocates nothing: clones park in
   [mc_scratch] between the passes. *)
let rec mc_clone_rest scratch p i = function
  | [] -> ()
  | _ :: tl ->
      Array.unsafe_set scratch i (Packet.clone p);
      mc_clone_rest scratch p (i + 1) tl

let rec mc_send_rest scratch i = function
  | [] -> ()
  | link :: tl ->
      let q = Array.unsafe_get scratch i in
      Array.unsafe_set scratch i Packet.dummy;
      Link.send link q;
      mc_send_rest scratch (i + 1) tl

let rec list_length_at acc = function
  | [] -> acc
  | _ :: tl -> list_length_at (acc + 1) tl

let forward_multicast t ~at_id (p : Packet.t) ~group =
  let links = tree_children t ~group ~src_id:p.src at_id in
  match links with
  | [] ->
      (* Terminal point with no subscribers downstream: the packet's
         journey ends here, recycle its arena slot. *)
      Packet.release p
  | [ link ] -> Link.send link p
  | link0 :: rest ->
      (* Branch point: duplicate for every child beyond the first.  All
         clones are taken before any send — [Link.send] may drop and
         release [p] (down link, TTL, full queue), after which it must
         not be read again.  Send order (first child, then the rest in
         tree order) is part of the deterministic event ordering. *)
      let n = list_length_at 0 rest in
      if n > Array.length t.mc_scratch then
        t.mc_scratch <-
          Array.make
            (max n (2 * Array.length t.mc_scratch))
            Packet.dummy;
      let scratch = t.mc_scratch in
      mc_clone_rest scratch p 0 rest;
      Link.send link0 p;
      mc_send_rest scratch 0 rest

let route_from t node_obj (p : Packet.t) ~local =
  let here = Node.id node_obj in
  match p.dst with
  | Packet.Unicast d when d = here ->
      if local then Node.deliver_local node_obj p;
      (* Handlers only borrow during delivery; the journey ends here. *)
      Packet.release p
  | Packet.Unicast d -> (
      match next_link t ~from_id:here ~dst_id:d with
      | Some link -> Link.send link p
      | None ->
          Logs.debug (fun m -> m "Topology: no route %d -> %d, dropping" here d);
          Packet.release p)
  | Packet.Multicast g ->
      if local && is_member t ~group:g node_obj then Node.deliver_local node_obj p;
      forward_multicast t ~at_id:here p ~group:g

let install_hook t node_obj =
  Node.set_receive_hook node_obj (fun p -> route_from t node_obj p ~local:true)

let grow t =
  let cap = Array.length t.nodes in
  if t.node_count = cap then begin
    let nodes = Array.make (2 * cap) t.nodes.(0) in
    Array.blit t.nodes 0 nodes 0 t.node_count;
    t.nodes <- nodes;
    let adjacency = Array.make (2 * cap) [] in
    Array.blit t.adjacency 0 adjacency 0 t.node_count;
    t.adjacency <- adjacency
  end

let add_node t =
  grow t;
  let n = Node.create ~id:t.node_count in
  t.nodes.(t.node_count) <- n;
  t.adjacency.(t.node_count) <- [];
  t.node_count <- t.node_count + 1;
  install_hook t n;
  invalidate_routes t;
  n

let add_nodes t n = Array.init n (fun _ -> add_node t)

let connect t ?(queue_capacity = 50) ?queue_ab ?queue_ba ?loss_ab ?loss_ba
    ~bandwidth_bps ~delay_s a b =
  let ida = Node.id a and idb = Node.id b in
  if ida = idb then invalid_arg "Topology.connect: self-loop";
  if Hashtbl.mem t.links (ida, idb) then
    invalid_arg (Printf.sprintf "Topology.connect: %d and %d already connected" ida idb);
  let mk_queue q =
    match q with
    | Some q -> q
    | None -> Queue_disc.droptail ~capacity_pkts:queue_capacity
  in
  let mk src dst queue loss =
    Link.create t.engine
      ?loss
      ~bandwidth_bps ~delay_s ~queue:(mk_queue queue) ~src ~dst ()
  in
  let ab = mk a b queue_ab loss_ab in
  let ba = mk b a queue_ba loss_ba in
  Hashtbl.add t.links (ida, idb) ab;
  Hashtbl.add t.links (idb, ida) ba;
  t.adjacency.(ida) <- (idb, ab) :: t.adjacency.(ida);
  t.adjacency.(idb) <- (ida, ba) :: t.adjacency.(idb);
  invalidate_routes t;
  (ab, ba)

let link_between t a b = Hashtbl.find_opt t.links (Node.id a, Node.id b)

let join t ~group n =
  let g = group_table t group in
  if not (Int_tbl.mem g (Node.id n)) then begin
    Int_tbl.replace g (Node.id n) ();
    invalidate_group_trees t group
  end

let leave t ~group n =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some g ->
      if Int_tbl.mem g (Node.id n) then begin
        Int_tbl.remove g (Node.id n);
        invalidate_group_trees t group
      end

let inject t (p : Packet.t) =
  Packet.guard "Topology.inject" p;
  let origin = node t p.src in
  (* The origin never receives its own packet. *)
  route_from t origin p ~local:false

let path t ~src ~dst =
  let src_id = Node.id src and dst_id = Node.id dst in
  if src_id = dst_id then Some [ src ]
  else begin
    let parent = parents_toward t dst_id in
    let rec walk v acc =
      if v = dst_id then Some (List.rev (dst_id :: acc))
      else begin
        let next = parent.(v) in
        if next < 0 then None else walk next (v :: acc)
      end
    in
    walk src_id [] |> Option.map (List.map (node t))
  end

let hop_count t ~src ~dst =
  path t ~src ~dst |> Option.map (fun p -> List.length p - 1)

let multicast_tree_links t ~group ~src =
  let src_id = Node.id src in
  let tree = build_tree t ~group ~src_id in
  Int_tbl.fold (fun _ links acc -> links @ acc) tree []
