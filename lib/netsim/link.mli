(** Unidirectional links: finite bandwidth, propagation delay, an egress
    queue, and an optional stochastic loss model.

    Transmission model (ns-2 style): a packet occupies the line for
    [size * 8 / bandwidth] seconds; packets arriving while the line is
    busy wait in the egress queue (or are dropped by the queue
    discipline); after transmission the packet propagates for [delay]
    seconds, is subjected to the loss model, and is handed to the
    destination node. *)

type t

(** What a fault injector may do with a packet entering the link (see
    {!set_fault} and {!Fault}): pass it through, drop it, substitute a
    (corrupted) replacement, transmit it twice, or hold it back for some
    extra seconds so later packets overtake it (reordering). *)
type fault_action =
  [ `Pass | `Drop | `Replace of Packet.t | `Duplicate | `Delay of float ]

val create :
  Engine.t ->
  ?loss:Loss_model.t ->
  bandwidth_bps:float ->
  delay_s:float ->
  queue:Queue_disc.t ->
  src:Node.t ->
  dst:Node.t ->
  unit ->
  t

val send : t -> Packet.t -> unit
(** Hands a packet to the link for transmission (may be queued/dropped). *)

val src : t -> Node.t

val dst : t -> Node.t

val bandwidth_bps : t -> float

val delay_s : t -> float

val set_delay : t -> float -> unit
(** Changes the propagation delay at runtime (experiments that alter a
    receiver's RTT mid-run).  Packets already in flight keep the delay
    they departed with. *)

val queue : t -> Queue_disc.t

val set_loss : t -> Loss_model.t -> unit
(** Replace the loss model at runtime (experiments change loss rates
    mid-run). *)

val set_up : t -> bool -> unit
(** Takes the link down (every packet handed to it is dropped and counted
    under {!packets_lost}) or back up.  Models path failure without
    touching routing state.  Each up/down transition counts as one
    {!flaps} entry. *)

val is_up : t -> bool

val flaps : t -> int
(** Number of up/down state transitions so far. *)

val set_fault : t -> (Packet.t -> fault_action) option -> unit
(** Installs (or with [None] removes) the fault injector consulted for
    every packet handed to {!send}.  [`Drop]s count under
    {!packets_lost}.  At most one injector is installed at a time —
    {!Fault} multiplexes several behaviours through one hook. *)

val packets_sent : t -> int
(** Packets fully transmitted onto the wire (before stochastic loss). *)

val packets_delivered : t -> int

val packets_lost : t -> int
(** Dropped by the stochastic loss model, a fault injector, a downed
    link, or the TTL guard (excludes queue drops; see
    [Queue_disc.drops (queue link)] for those). *)

(** {2 Conservation ledger}

    Exact per-link accounting used by the runtime invariant checker
    ({!Check.Invariant}): at any sample instant, a packet handed to the
    link by {!send} and passed (or produced) by the fault hook is in
    exactly one of the buckets below, so both identities hold:

    {ul
    {- [packets_offered = drops_down + drops_ttl + drops_queue
        + queue length + (1 if busy) + packets_sent]}
    {- [packets_sent = drops_loss + packets_in_flight
        + packets_delivered]}} *)

val packets_offered : t -> int
(** Packets that entered the link pipeline (post fault hook — a
    duplicated packet counts twice, a fault-dropped one not at all). *)

val packets_in_flight : t -> int
(** Transmitted packets still propagating (past the loss model, arrival
    not yet delivered). *)

val drops_queue : t -> int
(** Dropped by the queue discipline at enqueue. *)

val drops_loss : t -> int
(** Dropped by the stochastic loss model after transmission. *)

val drops_down : t -> int
(** Dropped because the link was administratively down. *)

val drops_ttl : t -> int
(** Dropped by the TTL guard (routing loop). *)

val drops_fault : t -> int
(** Dropped by the fault injector before entering the pipeline (not part
    of the {!packets_offered} ledger). *)

val busy : t -> bool

val utilization : t -> now:float -> float
(** Fraction of wall-clock time the line has spent transmitting. *)

val set_tracer :
  t ->
  (time:float ->
  kind:[ `Tx | `Drop_queue | `Drop_loss | `Drop_ttl | `Deliver ] ->
  Packet.t ->
  unit) ->
  unit
(** Installs a per-event callback (used by {!Trace}); replaces any
    previous tracer. *)
