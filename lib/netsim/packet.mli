(** Network packets.

    The payload is an extensible variant: each protocol library adds its
    own constructors (TCP segments, TFMCC data/feedback, ...), keeping the
    simulator core protocol-agnostic.

    Packets come from two allocators with one type:

    - {!make} returns a GC-managed record the caller may keep forever;
    - {!alloc} draws a record from the calling domain's arena ({!Pool}).
      Arena packets are recycled when the simulator is done with them
      (delivery or drop — see DESIGN.md §14 for the ownership rules), so
      holding one past the handler that received it is a use-after-free.

    Handlers that need to retain data from a delivered packet must copy
    the fields out (or {!clone} it) before returning. *)

type payload = ..
(** Protocol payloads.  Extended by [Tcp], [Tfrc] and [Tfmcc]. *)

type payload += Raw of int  (** Opaque filler traffic with a tag. *)

type dst =
  | Unicast of int  (** destination node id *)
  | Multicast of int  (** multicast group id *)

type t = private {
  mutable uid : int;  (** globally unique per packet copy *)
  mutable flow : int;  (** accounting tag; monitors aggregate by flow *)
  mutable size : int;  (** bytes on the wire, headers included *)
  mutable src : int;  (** originating node id *)
  mutable dst : dst;
  mutable payload : payload;
  mutable created : float;  (** send time at the origin *)
  mutable hops : int;  (** incremented per link traversal; TTL guard *)
  pooled : bool;  (** came from an arena; {!release} recycles it *)
  mutable live : bool;  (** false between release and the next acquire *)
}
(** Fields are mutable so arena slots can be recycled in place, but the
    type is private: all construction goes through {!make}/{!alloc}, and
    only [hops] is meant to be written after construction (by the link
    layer). *)

exception Use_after_free of string
(** Raised by {!guard} (and, in debug mode, by double {!release}) when a
    recycled arena packet is touched. *)

val make :
  flow:int -> size:int -> src:int -> dst:dst -> created:float -> payload -> t
(** Allocates a GC-managed packet with a fresh uid.  [size] must be
    positive.  Safe to retain indefinitely; {!release} on it is a no-op. *)

val alloc :
  flow:int -> size:int -> src:int -> dst:dst -> created:float -> payload -> t
(** Like {!make} but recycles a record from the domain's {!Pool} when one
    is free, falling back to the heap when the arena is exhausted.  The
    packet must be handed to the simulator, which releases it. *)

val release : t -> unit
(** Returns an arena packet to the domain pool.  No-op for {!make}d
    packets.  After release the record must not be touched: [live] is
    cleared, the payload reference is dropped, and in debug mode the
    scalar fields are poisoned and a double release raises
    {!Use_after_free}. *)

val clone : t -> t
(** A copy with a fresh uid (multicast duplication at branch points).
    Clones of arena packets come from the arena (heap on exhaustion);
    clones of heap packets are heap records. *)

val is_live : t -> bool
(** False only for an arena packet that is currently released. *)

val guard : string -> t -> unit
(** [guard ctx p] raises {!Use_after_free} if [p] is a released arena
    packet.  Called on the simulator entry points ([Link.send],
    [Topology.inject]); cheap enough to be always on. *)

val set_hops : t -> int -> unit
(** Link-layer TTL accounting ([hops] is the only field callers mutate). *)

val with_payload : t -> payload -> t
(** A heap copy with the given payload and the {e same} uid — the
    "same physical packet, mangled contents" operation used by fault
    injectors and wire-level corruption. *)

val ttl_limit : int
(** Packets are dropped after this many hops (routing-loop guard). *)

val dummy : t
(** Sentinel for empty data-structure slots (e.g. queue rings).  Looks
    like a released arena packet, so sending it trips {!guard}. *)

val pp : Format.formatter -> t -> unit

(** Fixed-capacity per-domain freelist of packet records.  Exposed for
    benchmarks and tests; normal code only goes through {!alloc} and
    {!release}. *)
module Pool : sig
  type pool

  val default_capacity : int

  val create : ?capacity:int -> unit -> pool
  (** A fresh arena with all [capacity] slots free.  Mostly for tests;
      {!alloc} uses the per-domain arena from {!domain}. *)

  val domain : unit -> pool
  (** The calling domain's arena (created on first use). *)

  val set_debug : pool -> bool -> unit
  (** Debug mode: poison released records and raise {!Use_after_free} on
      double release.  Off by default. *)

  val debug : pool -> bool

  val capacity : pool -> int

  val free : pool -> int
  (** Slots currently available. *)

  val in_use : pool -> int

  val acquired : pool -> int
  (** Total successful arena acquires (allocs + clones). *)

  val recycled : pool -> int
  (** Total releases that returned a record to the arena. *)

  val exhausted : pool -> int
  (** Heap fallbacks taken because the arena was empty. *)
end
