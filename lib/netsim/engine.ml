(* The clock is an {!Event_heap.time_cell}: an all-float record storing
   a raw double, so the per-event [now] update — written directly by
   [Event_heap.pop_due] — is a plain store.  A [mutable float] in the
   mixed engine record would allocate a fresh boxed float on every one
   of the millions of events. *)
type t = {
  heap : Event_heap.t;
  batch : Event_heap.batch;  (* same-timestamp dispatch scratch, reused *)
  links : Link_table.t;  (* SoA busy/busy-time state for all links *)
  clock : Event_heap.time_cell;
  rng : Stats.Rng.t;
  mutable stopped : bool;
  mutable processed : int;
  obs : Obs.Sink.t;
  ev_counter : Obs.Metrics.Counter.t;  (* engine-loop events processed *)
  (* Watchdog hook: [watchdog] runs every [wd_every] processed events.
     [wd_countdown] starts at [max_int] when no watchdog is installed,
     so the per-event cost without one is a single decrement that never
     reaches zero. *)
  mutable watchdog : (unit -> unit) option;
  mutable wd_every : int;
  mutable wd_countdown : int;
}

type handle = Event_heap.handle

let create ?(seed = 42) ?(obs = Obs.Sink.null) () =
  {
    heap = Event_heap.create ();
    batch = Event_heap.batch ();
    links = Link_table.create ();
    clock = { Event_heap.cell_time = 0. };
    rng = Stats.Rng.create seed;
    stopped = false;
    processed = 0;
    obs;
    ev_counter = Obs.Metrics.counter obs.Obs.Sink.metrics "netsim_engine_events_total";
    watchdog = None;
    wd_every = max_int;
    wd_countdown = max_int;
  }

let obs t = t.obs

let link_table t = t.links

let set_watchdog t ?(every_events = 4096) f =
  if every_events < 1 then
    invalid_arg "Engine.set_watchdog: every_events must be >= 1";
  t.watchdog <- Some f;
  t.wd_every <- every_events;
  t.wd_countdown <- every_events

let clear_watchdog t =
  t.watchdog <- None;
  t.wd_every <- max_int;
  t.wd_countdown <- max_int

(* Called from the event loops after each processed event.  An exception
   from the watchdog callback (a cancellation or stall abort) propagates
   out of [run] / [step] to the caller owning this engine's task. *)
let wd_tick t =
  t.wd_countdown <- t.wd_countdown - 1;
  if t.wd_countdown = 0 then begin
    t.wd_countdown <- t.wd_every;
    match t.watchdog with Some f -> f () | None -> ()
  end

let now t = t.clock.Event_heap.cell_time

let time_cell t = t.clock

let rng t = t.rng

let split_rng t = Stats.Rng.split t.rng

let at t ~time callback =
  if time < t.clock.Event_heap.cell_time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock.Event_heap.cell_time);
  Event_heap.add t.heap ~time callback

let after t ~delay callback =
  if delay < 0. then invalid_arg "Engine.after: negative delay";
  Event_heap.add t.heap ~time:(t.clock.Event_heap.cell_time +. delay) callback

(* Fire-and-forget scheduling: no handle is allocated or returned, so
   the engine-internal hot paths (link transmissions/arrivals) schedule
   with one short-lived minor-heap record per event and nothing else. *)
let after_unit t ~delay callback =
  if delay < 0. then invalid_arg "Engine.after_unit: negative delay";
  Event_heap.add_unit t.heap ~time:(t.clock.Event_heap.cell_time +. delay) callback

let after_pkt t ~delay pcb p =
  if delay < 0. then invalid_arg "Engine.after_pkt: negative delay";
  Event_heap.add_pkt t.heap ~time:(t.clock.Event_heap.cell_time +. delay) pcb p

let at_unit t ~time callback =
  if time < t.clock.Event_heap.cell_time then
    invalid_arg
      (Printf.sprintf "Engine.at_unit: time %g is in the past (now %g)" time
         t.clock.Event_heap.cell_time);
  Event_heap.add_unit t.heap ~time callback

let cancel t handle = Event_heap.cancel t.heap handle

let every t ?start ?until ~interval callback =
  if interval <= 0. then invalid_arg "Engine.every: interval must be positive";
  let start = Option.value start ~default:(t.clock.Event_heap.cell_time +. interval) in
  let rec tick time =
    match until with
    | Some limit when time > limit -> ()
    | _ ->
        Event_heap.add_unit t.heap ~time (fun () ->
            callback ();
            tick (time +. interval))
  in
  tick (Float.max t.clock.Event_heap.cell_time start)

let step t =
  let time = Event_heap.next_time t.heap in
  if Float.is_nan time then false
  else begin
    t.clock.Event_heap.cell_time <- time;
    t.processed <- t.processed + 1;
    Obs.Metrics.Counter.inc t.ev_counter;
    ignore (Event_heap.pop_fire t.heap ~into:t.clock : bool);
    wd_tick t;
    true
  end

let run ?until t =
  t.stopped <- false;
  (* [infinity] admits every event (including ones scheduled at
     [infinity], matching the unbounded behaviour of the old loop). *)
  let limit = match until with Some l -> l | None -> infinity in
  let batch = t.batch in
  (* Per-event accounting for the fused single-event fast path; one
     closure per [run], not per event. *)
  let pre () =
    t.processed <- t.processed + 1;
    Obs.Metrics.Counter.inc t.ev_counter
  in
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false
    else begin
      (* Dispatch: a due event whose timestamp no other event shares is
         popped and fired in one fused call (no batch traffic).  Exact
         timestamp ties — multicast fan-outs, synchronized timers — are
         drained into the flat scratch buffer and dispatched in one
         loop, one root comparison per event instead of a full
         pop-with-sift.  Dispatch order (time, then schedule order) is
         identical to the one-at-a-time loop: events scheduled at the
         same timestamp by a batch member land in the heap and drain
         after this batch, and their insertion seq is newer than every
         drained event's. *)
      let n = Event_heap.drain_or_fire t.heap ~limit ~into:t.clock batch ~pre in
      if n = 0 then continue := false
      else if n < 0 then wd_tick t
      else begin
        let i = ref 0 in
        (try
           while !i < n do
             if t.stopped then begin
               (* [stop] from inside a batch: park the unfired tail back
                  in the heap so it stays pending, as it would have under
                  one-at-a-time dispatch. *)
               Event_heap.requeue t.heap batch ~from:!i
                 ~time:t.clock.Event_heap.cell_time;
               i := n
             end
             else begin
               if Event_heap.batch_claim batch !i then begin
                 t.processed <- t.processed + 1;
                 Obs.Metrics.Counter.inc t.ev_counter;
                 Event_heap.batch_run batch !i;
                 wd_tick t
               end;
               incr i
             end
           done
         with e ->
           (* A callback (or the watchdog) aborted the run: the unfired
              tail must survive in the heap, exactly like events it had
              not yet popped under the old loop. *)
           Event_heap.requeue t.heap batch ~from:(!i + 1)
             ~time:t.clock.Event_heap.cell_time;
           Event_heap.batch_clear t.heap batch;
           raise e);
        Event_heap.batch_clear t.heap batch
      end
    end
  done;
  match until with
  | Some limit when (not t.stopped) && t.clock.Event_heap.cell_time < limit -> t.clock.Event_heap.cell_time <- limit
  | _ -> ()

let stop t = t.stopped <- true

let events_processed t = t.processed

let pending_events t = Event_heap.size t.heap

let queue_consistent t =
  Event_heap.well_formed t.heap
  &&
  match Event_heap.peek_time t.heap with
  | None -> true
  | Some next -> next >= t.clock.Event_heap.cell_time
