type t = {
  heap : Event_heap.t;
  mutable now : float;
  rng : Stats.Rng.t;
  mutable stopped : bool;
  mutable processed : int;
  obs : Obs.Sink.t;
  ev_counter : Obs.Metrics.Counter.t;  (* engine-loop events processed *)
}

type handle = Event_heap.handle

let create ?(seed = 42) ?(obs = Obs.Sink.null) () =
  {
    heap = Event_heap.create ();
    now = 0.;
    rng = Stats.Rng.create seed;
    stopped = false;
    processed = 0;
    obs;
    ev_counter = Obs.Metrics.counter obs.Obs.Sink.metrics "netsim_engine_events_total";
  }

let obs t = t.obs

let now t = t.now

let rng t = t.rng

let split_rng t = Stats.Rng.split t.rng

let at t ~time callback =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.now);
  Event_heap.add t.heap ~time callback

let after t ~delay callback =
  if delay < 0. then invalid_arg "Engine.after: negative delay";
  Event_heap.add t.heap ~time:(t.now +. delay) callback

let cancel t handle = Event_heap.cancel t.heap handle

let every t ?start ?until ~interval callback =
  if interval <= 0. then invalid_arg "Engine.every: interval must be positive";
  let start = Option.value start ~default:(t.now +. interval) in
  let rec tick time =
    match until with
    | Some limit when time > limit -> ()
    | _ ->
        ignore
          (Event_heap.add t.heap ~time (fun () ->
               callback ();
               tick (time +. interval)))
  in
  tick (Float.max t.now start)

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, callback) ->
      t.now <- time;
      t.processed <- t.processed + 1;
      Obs.Metrics.Counter.inc t.ev_counter;
      callback ();
      true

let run ?until t =
  t.stopped <- false;
  let continue () =
    (not t.stopped)
    &&
    match (Event_heap.peek_time t.heap, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some time, Some limit -> time <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when (not t.stopped) && t.now < limit -> t.now <- limit
  | _ -> ()

let stop t = t.stopped <- true

let events_processed t = t.processed

let pending_events t = Event_heap.size t.heap
