type t = {
  id : int;
  mutable handlers : (Packet.t -> unit) list;  (* attachment order *)
  mutable hook : (Packet.t -> unit) option;
  mutable received : int;
}

let create ~id = { id; handlers = []; hook = None; received = 0 }

let id t = t.id

(* Appending keeps the list in attachment order, so the per-packet
   delivery below iterates it directly instead of reversing a copy on
   every delivery (attach is rare, deliver is the hot path). *)
let attach t h = t.handlers <- t.handlers @ [ h ]

let detach_all t = t.handlers <- []

let handler_count t = List.length t.handlers

let deliver_local t p = List.iter (fun h -> h p) t.handlers

let receive t p =
  t.received <- t.received + 1;
  match t.hook with Some hook -> hook p | None -> deliver_local t p

let set_receive_hook t hook = t.hook <- Some hook

let packets_received t = t.received
