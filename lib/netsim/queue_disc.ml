type red_state = {
  rng : Stats.Rng.t;
  min_thresh : float;
  max_thresh : float;
  max_p : float;
  weight : float;
  mutable avg : float;
  mutable count : int;  (* packets since last early drop *)
  mutable idle_since : float option;
}

type kind = Droptail | Droptail_bytes of int | Red of red_state

(* FIFO storage is a growable power-of-two ring over a flat packet
   array: enqueue/dequeue are index arithmetic plus one store, where
   [Stdlib.Queue] allocated a 3-word cell per push.  Keeps the queued
   packets contiguous for the link's drain loop. *)
type t = {
  kind : kind;
  capacity : int;
  mutable ring : Packet.t array;
  mutable head : int;  (* index of the oldest packet *)
  mutable len : int;
  mutable bytes : int;
  mutable drops : int;
  mutable enqueued : int;
}

let initial_ring = 16  (* power of two; doubles on demand *)

let droptail ~capacity_pkts =
  if capacity_pkts <= 0 then invalid_arg "Queue_disc.droptail: capacity must be positive";
  {
    kind = Droptail;
    capacity = capacity_pkts;
    ring = Array.make initial_ring Packet.dummy;
    head = 0;
    len = 0;
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let droptail_bytes ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Queue_disc.droptail_bytes: capacity must be positive";
  {
    kind = Droptail_bytes capacity_bytes;
    capacity = max_int;
    ring = Array.make initial_ring Packet.dummy;
    head = 0;
    len = 0;
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let red ~rng ~capacity_pkts ?min_thresh ?max_thresh ?(max_p = 0.1)
    ?(weight = 0.002) () =
  if capacity_pkts <= 0 then invalid_arg "Queue_disc.red: capacity must be positive";
  let cap = float_of_int capacity_pkts in
  let min_thresh = Option.value min_thresh ~default:(cap /. 4.) in
  let max_thresh = Option.value max_thresh ~default:(3. *. cap /. 4.) in
  if min_thresh >= max_thresh then
    invalid_arg "Queue_disc.red: min_thresh must be below max_thresh";
  {
    kind =
      Red
        {
          rng;
          min_thresh;
          max_thresh;
          max_p;
          weight;
          avg = 0.;
          count = -1;
          idle_since = None;
        };
    capacity = capacity_pkts;
    ring = Array.make initial_ring Packet.dummy;
    head = 0;
    len = 0;
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let grow q =
  let n = Array.length q.ring in
  let ring = Array.make (2 * n) Packet.dummy in
  (* Unroll the ring into index order so head masking stays valid. *)
  for i = 0 to q.len - 1 do
    ring.(i) <- q.ring.((q.head + i) land (n - 1))
  done;
  q.ring <- ring;
  q.head <- 0

let accept q p =
  if q.len = Array.length q.ring then grow q;
  let mask = Array.length q.ring - 1 in
  Array.unsafe_set q.ring ((q.head + q.len) land mask) p;
  q.len <- q.len + 1;
  q.bytes <- q.bytes + p.Packet.size;
  q.enqueued <- q.enqueued + 1;
  true

let reject q =
  q.drops <- q.drops + 1;
  false

let red_enqueue q s p =
  let len = float_of_int q.len in
  s.avg <- ((1. -. s.weight) *. s.avg) +. (s.weight *. len);
  if q.len >= q.capacity then reject q
  else if s.avg < s.min_thresh then begin
    s.count <- -1;
    accept q p
  end
  else if s.avg >= s.max_thresh then begin
    s.count <- 0;
    reject q
  end
  else begin
    s.count <- s.count + 1;
    let pb = s.max_p *. (s.avg -. s.min_thresh) /. (s.max_thresh -. s.min_thresh) in
    let pa =
      let denom = 1. -. (float_of_int s.count *. pb) in
      if denom <= 0. then 1. else pb /. denom
    in
    if Stats.Rng.uniform s.rng < pa then begin
      s.count <- 0;
      reject q
    end
    else accept q p
  end

let enqueue q p =
  match q.kind with
  | Droptail -> if q.len >= q.capacity then reject q else accept q p
  | Droptail_bytes cap ->
      if q.bytes + p.Packet.size > cap then reject q else accept q p
  | Red s -> red_enqueue q s p

let is_empty q = q.len = 0

(* Allocation-free dequeue for the link's transmit-completion path. *)
let dequeue_exn q =
  if q.len = 0 then invalid_arg "Queue_disc.dequeue_exn: empty queue";
  let p = Array.unsafe_get q.ring q.head in
  (* Drop the slot's reference: the packet's arena slot must not be
     pinned by the ring once it leaves the queue. *)
  Array.unsafe_set q.ring q.head Packet.dummy;
  q.head <- (q.head + 1) land (Array.length q.ring - 1);
  q.len <- q.len - 1;
  q.bytes <- q.bytes - p.Packet.size;
  p

let dequeue q = if q.len = 0 then None else Some (dequeue_exn q)

let peek q = if q.len = 0 then None else Some q.ring.(q.head)

let length q = q.len

let byte_length q = q.bytes

let capacity q = q.capacity

let drops q = q.drops

let enqueued q = q.enqueued
