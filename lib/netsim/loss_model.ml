type ge_state = { mutable in_bad : bool }

type t =
  | None_
  | Bernoulli of { rng : Stats.Rng.t; p : float }
  | Gilbert of {
      rng : Stats.Rng.t;
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
      state : ge_state;
    }
  | Dynamic of dyn

and dyn = { mutable current : t }

let none = None_

let check_prob name p =
  if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Loss_model: %s out of [0,1]" name)

let bernoulli ~rng ~p =
  check_prob "p" p;
  Bernoulli { rng; p }

let gilbert_elliott ~rng ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad =
  check_prob "p_good_to_bad" p_good_to_bad;
  check_prob "p_bad_to_good" p_bad_to_good;
  check_prob "loss_good" loss_good;
  check_prob "loss_bad" loss_bad;
  Gilbert
    {
      rng;
      p_gb = p_good_to_bad;
      p_bg = p_bad_to_good;
      loss_good;
      loss_bad;
      state = { in_bad = false };
    }

let dynamic initial = Dynamic { current = initial }

let set_dynamic t m =
  match t with
  | Dynamic d ->
      (match m with
      | Dynamic _ -> invalid_arg "Loss_model.set_dynamic: nested dynamic model"
      | _ -> ());
      d.current <- m
  | _ -> invalid_arg "Loss_model.set_dynamic: not a dynamic model"

let rec drops_packet = function
  | None_ -> false
  | Bernoulli { rng; p } -> p > 0. && Stats.Rng.uniform rng < p
  | Gilbert g ->
      (* Advance the chain, then draw loss for the current state. *)
      let flip = Stats.Rng.uniform g.rng in
      if g.state.in_bad then begin
        if flip < g.p_bg then g.state.in_bad <- false
      end
      else if flip < g.p_gb then g.state.in_bad <- true;
      let p = if g.state.in_bad then g.loss_bad else g.loss_good in
      p > 0. && Stats.Rng.uniform g.rng < p
  | Dynamic d -> drops_packet d.current

let rec loss_rate_hint = function
  | None_ -> 0.
  | Bernoulli { p; _ } -> p
  | Gilbert g ->
      let denom = g.p_gb +. g.p_bg in
      if denom = 0. then
        (* Frozen chain: with both transition probabilities zero the
           process never leaves its initial (good) state, so there is no
           stationary mix to average — the long-run loss rate is exactly
           the good-state loss.  (With p_bg = 0 but p_gb > 0 the formula
           below correctly yields loss_bad: the chain is absorbed in the
           bad state.) *)
        g.loss_good
      else begin
        let pi_bad = g.p_gb /. denom in
        ((1. -. pi_bad) *. g.loss_good) +. (pi_bad *. g.loss_bad)
      end
  | Dynamic d -> loss_rate_hint d.current

let rec in_bad = function
  | None_ | Bernoulli _ -> false
  | Gilbert g -> g.state.in_bad
  | Dynamic d -> in_bad d.current

let rec describe = function
  | None_ -> "none"
  | Bernoulli { p; _ } -> Printf.sprintf "bernoulli(p=%g)" p
  | Gilbert g ->
      Printf.sprintf
        "gilbert-elliott(p_gb=%g, p_bg=%g, loss_good=%g, loss_bad=%g, \
         stationary=%g%s)"
        g.p_gb g.p_bg g.loss_good g.loss_bad
        (loss_rate_hint (Gilbert g))
        (if g.state.in_bad then ", in bad state" else "")
  | Dynamic d -> Printf.sprintf "dynamic(%s)" (describe d.current)
