(** Engine-level progress watchdog (DESIGN.md §12).

    Supervised experiment tasks must stay bounded: a simulation that
    livelocks (callbacks rescheduling at a frozen simulated instant),
    explodes into an event storm, or blocks on wall-clock work would
    otherwise hold its worker domain forever.  [install] arms two
    read-only probes on an engine:

    - an {e event-count} hook ({!Engine.set_watchdog}, every
      [check_every] events) that aborts when simulated time has not
      advanced for [stall_events] consecutive events (livelock) or the
      total event count exceeds [max_events] (event storm), and polls
      the task's {!Par.Control} for wall-clock deadlines;
    - a {e sim-time} hook ({!Engine.every}, every [sim_interval]
      simulated seconds) that polls the control too, catching wall
      overruns in runs that process few events.

    An abort records an [Error] note under the ["netsim.watchdog"]
    journal component (so the task's failure report carries the journal
    window, the PR 5 strict-mode shape) and raises
    {!Par.Cancelled}[ (Stall _)]; deadline overruns raise
    {!Par.Cancelled}[ (Timeout _)] from the control itself.  Probes
    never touch protocol or RNG state: a watched run that completes is
    byte-identical to an unwatched one. *)

type config = {
  control : Par.Control.t;  (** cancellation + wall deadline source *)
  stall_events : int;
      (** abort after this many events without sim-time progress;
          [<= 0] disables livelock detection *)
  max_events : int option;  (** total event budget; [None] = unbounded *)
  check_every : int;  (** events between event-count checks (≥ 1) *)
  sim_interval : float;  (** simulated seconds between control polls *)
}

val default : config
(** Inert control, 1M-event stall window, no event budget, check every
    4096 events, 0.25 s sim-time polls. *)

val install : config -> Engine.t -> unit
(** Arms both hooks on [engine].  Raises [Invalid_argument] on
    non-positive [check_every] / [sim_interval] / [max_events]. *)
