(** Packet-level event tracing in the spirit of ns-2 trace files.

    A tracer attaches to links and records transmit / queue-drop /
    loss-drop / deliver events with timestamps.  Useful for debugging
    protocol behaviour and for computing per-hop statistics the monitors
    do not expose. *)

(** What happened to a packet at a link. *)
type kind =
  | Tx  (** fully transmitted onto the wire *)
  | Drop_queue  (** rejected by the egress queue discipline *)
  | Drop_loss  (** dropped by the stochastic loss model *)
  | Drop_ttl  (** discarded by the TTL guard (routing loop) *)
  | Deliver  (** handed to the destination node *)

type event = {
  time : float;
  kind : kind;
  link_src : int;  (** node ids of the traced link *)
  link_dst : int;
  uid : int;  (** packet uid *)
  flow : int;
  size : int;
}

type t

val create : ?capacity:int -> ?sink:Obs.Sink.t -> unit -> t
(** Ring buffer of the most recent [capacity] events (default 100_000).
    When [sink] is given (default: the null sink), every recorded event
    also bumps the monotonic registry counter
    [netsim_trace_events_total{kind=tx|drop_queue|drop_loss|drop_ttl|deliver}],
    making the tracer a thin client of the shared metrics plane. *)

val attach : t -> Link.t -> unit
(** Starts tracing a link.  Multiple links may share one tracer. *)

val events : t -> event list
(** Oldest first (within the retained window). *)

val count : t -> kind:kind -> int
(** Events of one kind currently retained.  O(1): per-kind counts are
    maintained on {!record} (and decremented when the ring rotates an
    event out). *)

val total_recorded : t -> int
(** All events ever recorded, including those rotated out. *)

val clear : t -> unit
(** Empties the ring and resets {!total_recorded} and the per-kind
    counts.  Registry counters are monotonic and unaffected. *)

val pp_event : Format.formatter -> event -> unit
(** One ns-2-style line: [+ time src dst flow size uid] with [+/d/x/t/r]
    for Tx / Drop_queue / Drop_loss / Drop_ttl / Deliver. *)

val to_text : t -> string
(** The whole retained trace, one event per line. *)
