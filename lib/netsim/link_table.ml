(* Struct-of-arrays hot state for the links of one engine.

   The link transmit path touches two fields per packet — the busy flag
   and the cumulative busy-time accumulator.  Keeping them in flat
   engine-owned arrays (one byte / one unboxed double per link, indexed
   by the link's slot) instead of scattered per-link records keeps the
   whole fleet's hot state in a couple of cache lines and makes the
   accumulation a plain store: a [mutable float] in the mixed link
   record would box a fresh float on every transmission.

   Owned by the engine; never shared across domains (each sweep domain
   builds its own engines, DESIGN.md §9/§14). *)

type t = {
  mutable busy : Bytes.t;  (* '\000' = idle, '\001' = transmitting *)
  mutable busy_time : float array;  (* cumulative tx seconds *)
  mutable n : int;
}

let create () = { busy = Bytes.make 16 '\000'; busy_time = Array.make 16 0.; n = 0 }

let alloc t =
  if t.n = Bytes.length t.busy then begin
    let busy = Bytes.make (2 * t.n) '\000' in
    Bytes.blit t.busy 0 busy 0 t.n;
    let busy_time = Array.make (2 * t.n) 0. in
    Array.blit t.busy_time 0 busy_time 0 t.n;
    t.busy <- busy;
    t.busy_time <- busy_time
  end;
  let slot = t.n in
  t.n <- t.n + 1;
  slot

let length t = t.n

(* Slots are handed out by [alloc] and held privately by links, so the
   index is in range by construction. *)

let busy t i = Bytes.unsafe_get t.busy i <> '\000'

let set_busy t i b =
  Bytes.unsafe_set t.busy i (if b then '\001' else '\000')

let busy_time t i = Array.unsafe_get t.busy_time i

let add_busy_time t i dt =
  Array.unsafe_set t.busy_time i (Array.unsafe_get t.busy_time i +. dt)
