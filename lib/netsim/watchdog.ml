type config = {
  control : Par.Control.t;
  stall_events : int;
  max_events : int option;
  check_every : int;
  sim_interval : float;
}

let default =
  {
    control = Par.Control.none;
    stall_events = 1_000_000;
    max_events = None;
    check_every = 4096;
    sim_interval = 0.25;
  }

let validate cfg =
  if cfg.check_every < 1 then
    invalid_arg "Watchdog: check_every must be >= 1";
  if cfg.sim_interval <= 0. then
    invalid_arg "Watchdog: sim_interval must be positive";
  (match cfg.max_events with
  | Some m when m < 1 -> invalid_arg "Watchdog: max_events must be >= 1"
  | _ -> ())

let abort engine detail =
  let sink = Engine.obs engine in
  Obs.Sink.event sink ~time:(Engine.now engine) ~severity:Obs.Journal.Error
    (Obs.Journal.scope "netsim.watchdog")
    (Obs.Journal.Note ("watchdog abort: " ^ detail));
  raise (Par.Cancelled (Par.Stall detail))

let install cfg engine =
  validate cfg;
  (* Progress state: the last simulated time at which the clock moved,
     and the event count when it did.  Both hooks below only read
     simulation state, so a watched run follows the exact trajectory of
     an unwatched one (the sim-time tick does add engine events, but
     its callback touches neither protocol nor RNG state). *)
  let last_time = ref neg_infinity in
  let anchor = ref 0 in
  let tick () =
    Par.Control.check cfg.control;
    let now = Engine.now engine in
    let processed = Engine.events_processed engine in
    (match cfg.max_events with
    | Some m when processed > m ->
        abort engine
          (Printf.sprintf
             "event storm: %d events processed (budget %d) at t=%.6f"
             processed m now)
    | _ -> ());
    if now > !last_time then begin
      last_time := now;
      anchor := processed
    end
    else if cfg.stall_events > 0 && processed - !anchor >= cfg.stall_events then
      abort engine
        (Printf.sprintf
           "livelock: simulated time stuck at t=%.6f for %d events" now
           (processed - !anchor))
  in
  (* Event-count hook: catches livelock and event storms, where the
     simulated clock is frozen and a sim-time schedule would never
     fire. *)
  Engine.set_watchdog engine ~every_events:cfg.check_every tick;
  (* Sim-time hook: catches wall-clock overruns of simulations that
     process few events per wall second (e.g. callbacks blocking on IO),
     which the event-count hook would sample too rarely. *)
  if Par.Control.cancelled cfg.control = None then
    Engine.every engine ~interval:cfg.sim_interval (fun () ->
        Par.Control.check cfg.control)
