let max_delay_samples = 100_000

type flow_state = {
  counter : Stats.Timeseries.Counter.t;
  mutable packets : int;
  mutable delays : float array;  (* ring buffer *)
  mutable delay_len : int;  (* total recorded (may exceed buffer) *)
  (* Registry instruments (thin client of the shared metrics plane). *)
  m_bytes : Obs.Metrics.Counter.t;
  m_packets : Obs.Metrics.Counter.t;
  m_delay : Obs.Metrics.Histogram.t;
}

type t = {
  engine : Engine.t;
  flows : (int, flow_state) Hashtbl.t;
  (* One-entry cache: [tap] fires once per delivered packet and almost
     always for the same flow, so the hot path skips the table lookup. *)
  mutable hot_flow : int;
  mutable hot_state : flow_state option;
}

let create engine =
  { engine; flows = Hashtbl.create 16; hot_flow = min_int; hot_state = None }

let rec flow_state t flow =
  match t.hot_state with
  | Some st when t.hot_flow = flow -> st
  | _ -> flow_state_slow t flow

and flow_state_slow t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some st ->
      t.hot_flow <- flow;
      t.hot_state <- Some st;
      st
  | None ->
      let metrics = (Engine.obs t.engine).Obs.Sink.metrics in
      let labels = [ ("flow", string_of_int flow) ] in
      let st =
        {
          counter = Stats.Timeseries.Counter.create ();
          packets = 0;
          delays = Array.make 256 0.;
          delay_len = 0;
          m_bytes = Obs.Metrics.counter metrics ~labels "netsim_monitor_bytes_total";
          m_packets =
            Obs.Metrics.counter metrics ~labels "netsim_monitor_packets_total";
          m_delay =
            Obs.Metrics.histogram metrics ~labels "netsim_monitor_delay_seconds";
        }
      in
      Hashtbl.add t.flows flow st;
      t.hot_flow <- flow;
      t.hot_state <- Some st;
      st

let record_delay st d =
  let cap = Array.length st.delays in
  if st.delay_len >= cap && cap < max_delay_samples then begin
    let bigger = Array.make (Stdlib.min max_delay_samples (2 * cap)) 0. in
    Array.blit st.delays 0 bigger 0 cap;
    st.delays <- bigger
  end;
  st.delays.(st.delay_len mod Array.length st.delays) <- d;
  st.delay_len <- st.delay_len + 1

let tap t (p : Packet.t) =
  let st = flow_state t p.flow in
  st.packets <- st.packets + 1;
  (* Raw clock-cell read: [Engine.now] would box the float per packet. *)
  let now = (Engine.time_cell t.engine).Event_heap.cell_time in
  let delay = now -. p.created in
  record_delay st delay;
  Obs.Metrics.Counter.inc st.m_packets;
  Obs.Metrics.Counter.add st.m_bytes p.size;
  Obs.Metrics.Histogram.observe st.m_delay delay;
  Stats.Timeseries.Counter.record st.counter ~time:now ~bytes:p.size

let watch_node t n = Node.attach n (tap t)

let watch_node_flow t n ~flow =
  Node.attach n (fun p -> if p.Packet.flow = flow then tap t p)

let bytes t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> 0
  | Some st -> Stats.Timeseries.Counter.total_bytes st.counter

let packets t ~flow =
  match Hashtbl.find_opt t.flows flow with None -> 0 | Some st -> st.packets

let throughput_bps t ~flow ~t_start ~t_end =
  match Hashtbl.find_opt t.flows flow with
  | None -> 0.
  | Some st -> Stats.Timeseries.Counter.throughput_bps st.counter ~t_start ~t_end

let rate_series_bps t ~flow ~bin ~t_end =
  match Hashtbl.find_opt t.flows flow with
  | None -> [||]
  | Some st -> Stats.Timeseries.Counter.rate_series_bps st.counter ~bin ~t_end

let flows t = Hashtbl.to_seq_keys t.flows |> List.of_seq |> List.sort compare

let delays t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> [||]
  | Some st ->
      let cap = Array.length st.delays in
      let n = Stdlib.min st.delay_len cap in
      if st.delay_len <= cap then Array.sub st.delays 0 n
      else begin
        (* Ring wrapped: oldest retained sample sits at delay_len mod cap. *)
        let start = st.delay_len mod cap in
        Array.init n (fun i -> st.delays.((start + i) mod cap))
      end

let delay_summary t ~flow =
  let d = delays t ~flow in
  if Array.length d = 0 then None else Some (Stats.Descriptive.summarize d)
