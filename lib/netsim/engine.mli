(** Discrete-event simulation engine.

    One [t] value owns simulated time, the event queue, and the master
    random stream.  All other simulator objects (links, agents, monitors)
    hold a reference to the engine and schedule callbacks on it. *)

type t

type handle
(** A scheduled event; cancellable. *)

val create : ?seed:int -> ?obs:Obs.Sink.t -> unit -> t
(** [create ~seed ()] makes an engine at time 0.  Default seed 42.
    [obs] (default {!Obs.Sink.null}) is the observability plane every
    component reachable from this engine publishes into; the engine
    itself counts processed events under
    [netsim_engine_events_total]. *)

val obs : t -> Obs.Sink.t
(** The sink passed at creation (the null sink when none was). *)

val link_table : t -> Link_table.t
(** The engine-owned struct-of-arrays hot state its links index
    ({!Link_table}).  Links allocate their slot here at creation. *)

val now : t -> float
(** Current simulated time in seconds. *)

val time_cell : t -> Event_heap.time_cell
(** The engine's clock cell, for hot paths that read the time every
    packet: a [cell_time] field read is a raw double load, where {!now}
    boxes its result at the call boundary.  Read-only for callers — the
    engine owns the write. *)

val rng : t -> Stats.Rng.t
(** The engine's master random stream.  Components that need their own
    stream should [Stats.Rng.split] it at setup time. *)

val split_rng : t -> Stats.Rng.t
(** Convenience for [Stats.Rng.split (rng t)]. *)

val at : t -> time:float -> (unit -> unit) -> handle
(** Schedules a callback at an absolute time ≥ [now].  Raises
    [Invalid_argument] on times in the past. *)

val after : t -> delay:float -> (unit -> unit) -> handle
(** Schedules a callback [delay] seconds from now (delay ≥ 0). *)

val after_unit : t -> delay:float -> (unit -> unit) -> unit
(** Fire-and-forget {!after}: no handle (the event cannot be cancelled),
    and the event record is recycled through the heap's freelist — zero
    record allocation in the steady state.  Use whenever the handle
    would be [ignore]d. *)

val after_pkt : t -> delay:float -> (Packet.t -> unit) -> Packet.t -> unit
(** Fire-and-forget packet event: applies the function to the packet
    after [delay].  With a preallocated per-object function this
    schedules a delivery without allocating a per-packet closure; the
    record is recycled like {!after_unit}'s. *)

val at_unit : t -> time:float -> (unit -> unit) -> unit
(** Fire-and-forget {!at} (same freelist recycling as {!after_unit}). *)

val cancel : t -> handle -> unit

val every :
  t -> ?start:float -> ?until:float -> interval:float -> (unit -> unit) -> unit
(** Schedules [callback] at [start] (default now + interval) and every
    [interval] seconds thereafter, stopping after [until] if given —
    without [until] the schedule is unbounded, so drive the engine with
    [run ~until].  Used by periodic fault schedules ({!Fault}). *)

val run : ?until:float -> t -> unit
(** Processes events in time order until the queue empties, [until] is
    reached (events at t > until stay queued and [now] becomes [until]),
    or {!stop} is called from inside a callback. *)

val step : t -> bool
(** Processes a single event; [false] when the queue is empty. *)

val stop : t -> unit
(** Makes the innermost [run] return after the current callback. *)

val set_watchdog : t -> ?every_events:int -> (unit -> unit) -> unit
(** Installs a callback invoked from the event loops after every
    [every_events] (default 4096, must be ≥ 1) processed events — the
    hook {!Watchdog} rides to detect stalls and enforce wall-clock
    deadlines.  The callback must be read-only with respect to
    simulation state; an exception it raises propagates out of {!run} /
    {!step} and aborts the run.  Replaces any previous watchdog.  With
    none installed the per-event cost is a single integer decrement. *)

val clear_watchdog : t -> unit

val events_processed : t -> int

val pending_events : t -> int

val queue_consistent : t -> bool
(** Structural audit of the event queue for the runtime invariant
    checker: the underlying heap is well-formed
    ({!Event_heap.well_formed}) and no pending event precedes the
    current clock — i.e. simulated time can only move forward.  O(n) in
    the queue size; purges cancelled events surfacing at the root as a
    side effect (behaviour-neutral). *)
