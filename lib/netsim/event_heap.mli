(** Binary min-heap of timed events with O(log n) insert / pop and O(1)
    cancellation (lazy deletion).  Ties in time are broken by insertion
    order so simulations are deterministic.

    Representation: the time keys live in a flat (unboxed) [float array]
    parallel to the payload array, so neither insertion nor the
    {!next_time}/{!pop_exn} fast path boxes a float or allocates per
    event — the engine's inner loop runs allocation-free between
    callbacks. *)

type t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> t

val add : t -> time:float -> (unit -> unit) -> handle
(** Schedules a callback.  [time] may equal the current minimum. *)

val add_unit : t -> time:float -> (unit -> unit) -> unit
(** Like {!add} for fire-and-forget events: no handle is returned.
    (Event records are always freshly allocated: recycling them through
    a freelist was measured slower than minor allocation — see the
    implementation note in event_heap.ml.) *)

val add_pkt : t -> time:float -> (Packet.t -> unit) -> Packet.t -> unit
(** Fire-and-forget packet event: at [time], applies the given function
    to the packet.  With a preallocated per-link function this schedules
    a delivery without a per-packet closure. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val pop : t -> (float * (unit -> unit)) option
(** Removes and returns the earliest live event, skipping cancelled ones.
    [None] when no live events remain. *)

val peek_time : t -> float option
(** Time of the earliest live event without removing it. *)

val next_time : t -> float
(** Allocation-free {!peek_time}: the time of the earliest live event,
    or [nan] when none remain (cancelled events surfacing at the root
    are discarded).  Test with [Float.is_nan]; NaN is never a stored key
    ({!add} rejects it). *)

val pop_exn : t -> unit -> unit
(** Allocation-free {!pop}: removes the earliest live event and returns
    its callback (the corresponding time is what {!next_time} just
    returned).  Raises [Invalid_argument] when no live events remain. *)

type time_cell = { mutable cell_time : float }
(** All-float record (raw double storage): writes to it never box. *)

val pop_due : t -> limit:float -> into:time_cell -> (unit -> unit) option
(** Removes the earliest live event if its time is [<= limit], writing
    that time into [into] and returning the callback; [None] when the
    heap is empty or the next event is after [limit].  One call on the
    engine's inner loop in place of a {!next_time}/{!pop_exn} pair, with
    no boxed float crossing the boundary. *)

type batch
(** Reusable scratch buffer for batched dispatch ({!drain_due}).  One per
    engine; never shared across domains. *)

val batch : unit -> batch

val batch_length : batch -> int

val drain_due : t -> limit:float -> into:time_cell -> batch -> int
(** Drains {e every} live event sharing the earliest due timestamp
    (≤ [limit]) into the batch, in dispatch order, writing that
    timestamp into [into]; returns the batch size (0 when nothing is
    due).  Drained events leave the heap and its live count but stay
    cancellable until claimed — cancelling one makes {!batch_claim} skip
    it.  Replaces a {!pop_due} call per event with one drain per
    distinct timestamp. *)

val drain_or_fire :
  t -> limit:float -> into:time_cell -> batch -> pre:(unit -> unit) -> int
(** Fused engine-loop step.  If the earliest due event's timestamp is
    {e unique} (no other live event shares it — the overwhelmingly
    common case in continuous time), pops it, runs [pre] (the caller's
    per-event accounting) after writing [into], fires it, and returns
    [-1]; the batch is untouched.  On an exact timestamp tie, behaves
    exactly like {!drain_due} (returns the batch length ≥ 1, nothing
    fired).  Returns [0] when nothing is due at or before [limit]. *)

val batch_claim : batch -> int -> bool
(** Marks the [i]-th batched event fired; [false] if it was cancelled
    after the drain (the dispatch loop must then skip it without
    accounting).  [i < batch_length] is the caller's invariant. *)

val batch_run : batch -> int -> unit
(** Runs the [i]-th batched event's callback (after {!batch_claim}
    returned [true]). *)

val requeue : t -> batch -> from:int -> time:float -> unit
(** Re-inserts batched events [from ..] that were never claimed back
    into the heap at [time] — used when [stop] or an exception aborts a
    batch mid-dispatch.  Original insertion order is preserved, so the
    next drain dispatches them exactly as the aborted one would have. *)

val batch_clear : t -> batch -> unit
(** Drops the event references so a parked batch does not pin fired
    callbacks (or their packets) between runs. *)

val pop_fire : t -> into:time_cell -> bool
(** Removes the earliest live event, writes its time into [into], and
    runs it; [false] on an empty heap.  The single-event analogue of the
    drain/dispatch pair, for [Engine.step]. *)

val size : t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : t -> bool

val well_formed : t -> bool
(** O(n) structural audit (used by the runtime invariant checker): no
    stored key is NaN, the (time, insertion-order) min-heap property
    holds on every parent/child edge, and the live count agrees with the
    stored events.  Read-only. *)
