(** Binary min-heap of timed events with O(log n) insert / pop and O(1)
    cancellation (lazy deletion).  Ties in time are broken by insertion
    order so simulations are deterministic.

    Representation: the time keys live in a flat (unboxed) [float array]
    parallel to the payload array, so neither insertion nor the
    {!next_time}/{!pop_exn} fast path boxes a float or allocates per
    event — the engine's inner loop runs allocation-free between
    callbacks. *)

type t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> t

val add : t -> time:float -> (unit -> unit) -> handle
(** Schedules a callback.  [time] may equal the current minimum. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val pop : t -> (float * (unit -> unit)) option
(** Removes and returns the earliest live event, skipping cancelled ones.
    [None] when no live events remain. *)

val peek_time : t -> float option
(** Time of the earliest live event without removing it. *)

val next_time : t -> float
(** Allocation-free {!peek_time}: the time of the earliest live event,
    or [nan] when none remain (cancelled events surfacing at the root
    are discarded).  Test with [Float.is_nan]; NaN is never a stored key
    ({!add} rejects it). *)

val pop_exn : t -> unit -> unit
(** Allocation-free {!pop}: removes the earliest live event and returns
    its callback (the corresponding time is what {!next_time} just
    returned).  Raises [Invalid_argument] when no live events remain. *)

type time_cell = { mutable cell_time : float }
(** All-float record (raw double storage): writes to it never box. *)

val pop_due : t -> limit:float -> into:time_cell -> (unit -> unit) option
(** Removes the earliest live event if its time is [<= limit], writing
    that time into [into] and returning the callback; [None] when the
    heap is empty or the next event is after [limit].  One call on the
    engine's inner loop in place of a {!next_time}/{!pop_exn} pair, with
    no boxed float crossing the boundary. *)

val size : t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : t -> bool

val well_formed : t -> bool
(** O(n) structural audit (used by the runtime invariant checker): no
    stored key is NaN, the (time, insertion-order) min-heap property
    holds on every parent/child edge, and the live count agrees with the
    stored events.  Read-only. *)
