type kind =
  | Cbr of { jitter : float }
  | Poisson
  | On_off of { on_mean : float; off_mean : float }

type t = {
  topo : Topology.t;
  engine : Engine.t;
  rng : Stats.Rng.t;
  kind : kind;
  flow : int;
  src : Node.t;
  dst : Node.t;
  rate_bps : float;
  packet_size : int;
  mutable running : bool;
  mutable in_on_period : bool;
  mutable period_ends : float;
  mutable timer : Engine.handle option;
  mutable sent : int;
  mutable bytes : int;
}

let make topo ~kind ~flow ~src ~dst ~rate_bps ~packet_size =
  if rate_bps <= 0. then invalid_arg "Traffic: rate must be positive";
  if packet_size <= 0 then invalid_arg "Traffic: packet size must be positive";
  let engine = Topology.engine topo in
  {
    topo;
    engine;
    rng = Engine.split_rng engine;
    kind;
    flow;
    src;
    dst;
    rate_bps;
    packet_size;
    running = false;
    in_on_period = true;
    period_ends = 0.;
    timer = None;
    sent = 0;
    bytes = 0;
  }

let cbr topo ~flow ~src ~dst ~rate_bps ?(packet_size = 1000) ?(jitter = 0.1) () =
  if jitter < 0. || jitter >= 2. then invalid_arg "Traffic.cbr: jitter out of [0,2)";
  make topo ~kind:(Cbr { jitter }) ~flow ~src ~dst ~rate_bps ~packet_size

let poisson topo ~flow ~src ~dst ~rate_bps ?(packet_size = 1000) () =
  make topo ~kind:Poisson ~flow ~src ~dst ~rate_bps ~packet_size

let on_off topo ~flow ~src ~dst ~rate_bps ?(packet_size = 1000) ?(on_mean = 1.)
    ?(off_mean = 1.) () =
  if on_mean <= 0. || off_mean <= 0. then
    invalid_arg "Traffic.on_off: period means must be positive";
  make topo ~kind:(On_off { on_mean; off_mean }) ~flow ~src ~dst ~rate_bps
    ~packet_size

let gap t =
  let nominal = float_of_int t.packet_size *. 8. /. t.rate_bps in
  match t.kind with
  | Cbr { jitter } ->
      nominal *. (1. -. (jitter /. 2.) +. Stats.Rng.float t.rng jitter)
  | Poisson -> Stats.Rng.exponential t.rng ~mean:nominal
  | On_off _ -> nominal

let emit t =
  let p =
    Packet.alloc ~flow:t.flow ~size:t.packet_size ~src:(Node.id t.src)
      ~dst:(Packet.Unicast (Node.id t.dst))
      ~created:(Engine.now t.engine) (Packet.Raw t.flow)
  in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + t.packet_size;
  Topology.inject t.topo p

let rec tick t =
  t.timer <- None;
  if t.running then begin
    let now = Engine.now t.engine in
    (match t.kind with
    | On_off { on_mean; off_mean } ->
        if now >= t.period_ends then begin
          (* Flip phase. *)
          t.in_on_period <- not t.in_on_period;
          let mean = if t.in_on_period then on_mean else off_mean in
          t.period_ends <- now +. Stats.Rng.exponential t.rng ~mean
        end
    | Cbr _ | Poisson -> ());
    let delay =
      match t.kind with
      | On_off _ when not t.in_on_period ->
          (* Sleep out the off period. *)
          Float.max 1e-6 (t.period_ends -. now)
      | _ ->
          emit t;
          gap t
    in
    t.timer <- Some (Engine.after t.engine ~delay (fun () -> tick t))
  end

let start t ~at =
  t.running <- true;
  (match t.kind with
  | On_off { on_mean; _ } ->
      t.in_on_period <- true;
      t.period_ends <- at +. Stats.Rng.exponential t.rng ~mean:on_mean
  | Cbr _ | Poisson -> ());
  Engine.at_unit t.engine ~time:at (fun () -> tick t)

let stop t =
  t.running <- false;
  match t.timer with
  | Some h ->
      Engine.cancel t.engine h;
      t.timer <- None
  | None -> ()

let packets_sent t = t.sent

let bytes_sent t = t.bytes
