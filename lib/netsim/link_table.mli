(** Struct-of-arrays busy/busy-time state for every link of one engine.

    Links allocate a slot at creation and index the engine's table on
    the transmit path; the flat layout keeps all links' hot scalars
    contiguous and the busy-time accumulation unboxed.  One table per
    engine; never shared across domains. *)

type t

val create : unit -> t

val alloc : t -> int
(** A fresh slot (grows the arrays as needed). *)

val length : t -> int

val busy : t -> int -> bool

val set_busy : t -> int -> bool -> unit

val busy_time : t -> int -> float

val add_busy_time : t -> int -> float -> unit
