(** Fault-injection layer: scheduled link failures, subtree partitions,
    packet corruption / duplication / reordering injectors, and receiver
    churn events, all driven off the simulation clock.

    One [t] owns the schedules and the aggregate counters, so an
    experiment can both script a chaos scenario declaratively and report
    afterwards exactly how much damage was injected.  The layer is
    protocol-agnostic: packet corruption takes a caller-supplied mangle
    function (e.g. [Tfmcc_core.Wire.corrupt_packet]) so netsim never
    learns about payload types. *)

type t

val create : Engine.t -> t
(** A fault plan bound to an engine; injector randomness is split off the
    engine's master stream, so runs stay reproducible per seed. *)

(** {1 Link failures and partitions} *)

val down_at : t -> Link.t -> time:float -> unit
(** Takes the link down at [time] (packets handed to it are dropped). *)

val up_at : t -> Link.t -> time:float -> unit

val flap : t -> Link.t -> down_at:float -> up_at:float -> unit
(** One down/up cycle. *)

val flap_every :
  t -> Link.t -> first_down:float -> period:float -> down_for:float ->
  until:float -> unit
(** Repeated flapping: down at [first_down], [first_down + period], …,
    each outage lasting [down_for] seconds, no cycle starting after
    [until]. *)

val partition : t -> links:Link.t list -> from_:float -> until:float -> unit
(** Takes every listed link down over [[from_, until]] and restores it
    afterwards — pass both directions of each cut edge to model a full
    partition of a subtree (data and feedback both blocked). *)

(** {1 Packet-level injectors}

    Injectors attach to a link and fire per packet with the given
    probability, optionally only inside a time window.  Several injectors
    may be installed on the same link; they are consulted in installation
    order and the first one that acts on a packet wins.  Installing any
    injector replaces a fault hook installed directly via
    {!Link.set_fault}. *)

val corrupt :
  t -> Link.t -> ?from_:float -> ?until:float -> rate:float ->
  mangle:(Stats.Rng.t -> Packet.t -> Packet.t) -> unit -> unit
(** Replaces each selected packet by [mangle rng packet] — the returned
    packet continues down the link in its place. *)

val duplicate :
  t -> Link.t -> ?from_:float -> ?until:float -> rate:float -> unit -> unit
(** Transmits each selected packet twice. *)

val reorder :
  t -> Link.t -> ?from_:float -> ?until:float -> rate:float ->
  extra_delay:float -> unit -> unit
(** Holds each selected packet back for Uniform(0, extra_delay] seconds
    before it enters the link, so later packets overtake it. *)

val drop :
  t -> Link.t -> ?from_:float -> ?until:float -> rate:float -> unit -> unit
(** Drops each selected packet.  Unlike a {!Loss_model} this is counted
    as injected damage under {!drops_injected}. *)

val clear_injectors : t -> Link.t -> unit
(** Removes every injector this plan installed on the link. *)

(** {1 Receiver churn} *)

type churn_kind = Crash | Graceful

val churn : t -> at:float -> kind:churn_kind -> (churn_kind -> unit) -> unit
(** Schedules a churn event: the callback performs the actual leave —
    for a [Crash] it must not emit a leave report (the receiver vanishes
    silently and the sender has to find out via its timeouts), for a
    [Graceful] leave it should.  The kind is recorded in the counters. *)

(** {1 Counters and reporting} *)

val corruptions : t -> int

val duplications : t -> int

val reorderings : t -> int

val drops_injected : t -> int

val link_flaps : t -> int
(** Down transitions executed by this plan (partitions included). *)

val partitions : t -> int

val crashes : t -> int

val graceful_leaves : t -> int

val describe : t -> string
(** One-line summary of everything injected so far, for experiment
    notes. *)
