(** Stochastic packet-loss models applied on link traversal, independent
    of queue overflow.  Used for the paper's lossy-link experiments
    (Figs 11, 19) where links have configured loss rates. *)

type t

val none : t
(** Never drops. *)

val bernoulli : rng:Stats.Rng.t -> p:float -> t
(** Drops each packet independently with probability [p] ∈ [0,1]. *)

val gilbert_elliott :
  rng:Stats.Rng.t ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  loss_good:float ->
  loss_bad:float ->
  t
(** Two-state bursty loss: transition probabilities are evaluated per
    packet; each state has its own loss probability.  Gives correlated
    loss bursts (extension beyond the paper's iid model). *)

val dynamic : t -> t
(** A mutable wrapper delegating to an inner model that can be swapped at
    runtime with {!set_dynamic} — how scheduled fault windows
    ({!Fault}) degrade a link's loss behaviour mid-run without touching
    the link itself. *)

val set_dynamic : t -> t -> unit
(** [set_dynamic d m] replaces the inner model of the {!dynamic} wrapper
    [d] by [m].  Raises [Invalid_argument] if [d] is not dynamic or [m]
    is itself dynamic (no nesting). *)

val drops_packet : t -> bool
(** Evaluates the model for one packet; [true] means drop. *)

val loss_rate_hint : t -> float
(** Long-run loss probability: exact for none/bernoulli, stationary
    average for Gilbert–Elliott, the inner model's hint for dynamic.
    A Gilbert–Elliott chain with both transition probabilities zero never
    leaves its initial (good) state, so its hint is [loss_good]; with
    only [p_bad_to_good = 0] the chain is absorbed in the bad state and
    the hint is [loss_bad].  Used in reports only. *)

val in_bad : t -> bool
(** Whether a Gilbert–Elliott chain currently sits in its bad state
    (always [false] for the other models); diagnostic, lets tests observe
    the chain. *)

val describe : t -> string
(** One-line human-readable description with the configured parameters
    and the stationary loss rate, for traces and experiment notes. *)
