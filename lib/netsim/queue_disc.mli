(** Queueing disciplines for link egress buffers.

    The paper's simulations use drop-tail FIFO queues ("to ensure
    acceptable behavior in the current Internet"); RED is provided for the
    ablation the paper alludes to (fairness improves under RED). *)

type t

val droptail : capacity_pkts:int -> t
(** FIFO with a hard limit of [capacity_pkts] packets (ns-2 style). *)

val droptail_bytes : capacity_bytes:int -> t
(** FIFO limited by queued bytes instead of packets (router-buffer
    style): a packet is accepted iff it fits entirely. *)

val red :
  rng:Stats.Rng.t ->
  capacity_pkts:int ->
  ?min_thresh:float ->
  ?max_thresh:float ->
  ?max_p:float ->
  ?weight:float ->
  unit ->
  t
(** Random Early Detection (Floyd & Jacobson 1993) over a FIFO of
    [capacity_pkts].  Thresholds are in packets; defaults
    [min_thresh] = capacity/4, [max_thresh] = 3*capacity/4,
    [max_p] = 0.1, EWMA [weight] = 0.002. *)

val enqueue : t -> Packet.t -> bool
(** [enqueue q p] accepts or drops [p]; [false] means dropped. *)

val dequeue : t -> Packet.t option

val is_empty : t -> bool

val dequeue_exn : t -> Packet.t
(** Allocation-free {!dequeue} for the link hot path; raises
    [Invalid_argument] on an empty queue (guard with {!is_empty}). *)

val peek : t -> Packet.t option

val length : t -> int
(** Current queue length in packets. *)

val byte_length : t -> int

val capacity : t -> int

val drops : t -> int
(** Cumulative count of packets dropped at enqueue. *)

val enqueued : t -> int
(** Cumulative count of packets accepted. *)
