type fault_action =
  [ `Pass | `Drop | `Replace of Packet.t | `Duplicate | `Delay of float ]

type t = {
  engine : Engine.t;
  mutable loss : Loss_model.t;
  bandwidth_bps : float;
  mutable delay_s : float;
  queue : Queue_disc.t;
  src : Node.t;
  dst : Node.t;
  (* Hot state (busy flag, cumulative busy time) lives in the engine's
     struct-of-arrays {!Link_table}, indexed by [slot]: the whole
     fleet's transmit scalars stay contiguous and the busy-time
     accumulation is a plain unboxed store. *)
  tbl : Link_table.t;
  slot : int;
  (* The transmission-complete callback is allocated once per link, not
     once per packet: the line serializes transmissions, so exactly one
     packet is on the wire head at a time and rides in [tx_pkt]. *)
  mutable tx_pkt : Packet.t;
  mutable complete : unit -> unit;
  (* Arrival callback, allocated once per link: with [Engine.after_pkt]
     an in-flight packet needs no per-packet closure. *)
  mutable arrive_pcb : Packet.t -> unit;
  mutable up : bool;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable flaps : int;
  (* Per-link conservation ledger (see Check.Invariant): every packet
     entering [forward] is [offered]; it then either pre-drops (down /
     TTL), drops at the queue, or is accepted into the queue+wire
     pipeline; after transmission it either drops to the loss model or
     propagates ([in_flight]) until delivery.  These separate the drop
     kinds that [lost] conflates, so the checker can assert exact packet
     conservation at any sample instant. *)
  mutable offered : int;
  mutable in_flight : int;
  mutable drop_queue_n : int;
  mutable drop_loss_n : int;
  mutable drop_down_n : int;
  mutable drop_ttl_n : int;
  mutable drop_fault_n : int;
  mutable fault : (Packet.t -> fault_action) option;
  mutable tracer :
    (time:float ->
    kind:[ `Tx | `Drop_queue | `Drop_loss | `Drop_ttl | `Deliver ] ->
    Packet.t ->
    unit)
    option;
  (* Registry instruments shared by every link of the engine (same
     metric name -> same handle). *)
  cs : counters;
}

and counters = {
  m_tx : Obs.Metrics.Counter.t;
  m_deliver : Obs.Metrics.Counter.t;
  m_drop_queue : Obs.Metrics.Counter.t;
  m_drop_loss : Obs.Metrics.Counter.t;
  m_drop_down : Obs.Metrics.Counter.t;
  m_drop_ttl : Obs.Metrics.Counter.t;
}

(* Every link of an engine resolves the same six registry handles, so
   cache the bundle per registry (one-entry, keyed by physical equality)
   instead of paying six Hashtbl lookups per link created.  The cache is
   domain-local: parallel sweep domains each run their own engines and
   must never share mutable state (see DESIGN.md section 9). *)
let counters_cache : (Obs.Metrics.t * counters) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let counters_for metrics =
  match Domain.DLS.get counters_cache with
  | Some (m, c) when m == metrics -> c
  | _ ->
      let c =
        {
          m_tx = Obs.Metrics.counter metrics "netsim_link_tx_total";
          m_deliver = Obs.Metrics.counter metrics "netsim_link_deliver_total";
          m_drop_queue = Obs.Metrics.counter metrics "netsim_link_drop_queue_total";
          m_drop_loss = Obs.Metrics.counter metrics "netsim_link_drop_loss_total";
          m_drop_down = Obs.Metrics.counter metrics "netsim_link_drop_down_total";
          m_drop_ttl = Obs.Metrics.counter metrics "netsim_link_drop_ttl_total";
        }
      in
      Domain.DLS.set counters_cache (Some (metrics, c));
      c

let tx_time t (p : Packet.t) = float_of_int p.size *. 8. /. t.bandwidth_bps

let trace t ~kind p =
  match t.tracer with
  | Some f -> f ~time:(Engine.now t.engine) ~kind p
  | None -> ()

let on_arrive t p =
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  Obs.Metrics.Counter.inc t.cs.m_deliver;
  trace t ~kind:`Deliver p;
  Node.receive t.dst p

let deliver t p =
  if Loss_model.drops_packet t.loss then begin
    t.lost <- t.lost + 1;
    t.drop_loss_n <- t.drop_loss_n + 1;
    Obs.Metrics.Counter.inc t.cs.m_drop_loss;
    trace t ~kind:`Drop_loss p;
    Packet.release p
  end
  else begin
    t.in_flight <- t.in_flight + 1;
    (* One scheduled event per in-flight packet, deliberately:
       [set_delay] may change the propagation delay while packets are in
       flight, so arrivals are not FIFO and cannot ride one shared
       pre-scheduled callback.  [after_pkt] keeps it allocation-free. *)
    Engine.after_pkt t.engine ~delay:t.delay_s t.arrive_pcb p
  end

(* Transmit [p] now; [t.complete] (the once-per-link closure around
   [on_complete]) pulls the next queued packet when the line frees up. *)
let transmit t p =
  Link_table.set_busy t.tbl t.slot true;
  let tx = tx_time t p in
  Link_table.add_busy_time t.tbl t.slot tx;
  t.tx_pkt <- p;
  Engine.after_unit t.engine ~delay:tx t.complete

let on_complete t =
  let p = t.tx_pkt in
  t.tx_pkt <- Packet.dummy;
  t.sent <- t.sent + 1;
  Obs.Metrics.Counter.inc t.cs.m_tx;
  trace t ~kind:`Tx p;
  deliver t p;
  if Queue_disc.is_empty t.queue then Link_table.set_busy t.tbl t.slot false
  else transmit t (Queue_disc.dequeue_exn t.queue)

let create engine ?(loss = Loss_model.none) ~bandwidth_bps ~delay_s ~queue ~src
    ~dst () =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  let metrics = (Engine.obs engine).Obs.Sink.metrics in
  let tbl = Engine.link_table engine in
  let t = {
    engine;
    loss;
    bandwidth_bps;
    delay_s;
    queue;
    src;
    dst;
    tbl;
    slot = Link_table.alloc tbl;
    tx_pkt = Packet.dummy;
    complete = ignore;  (* tied to the record below; see [transmit] *)
    arrive_pcb = (fun (_ : Packet.t) -> ());
    up = true;
    sent = 0;
    delivered = 0;
    lost = 0;
    flaps = 0;
    offered = 0;
    in_flight = 0;
    drop_queue_n = 0;
    drop_loss_n = 0;
    drop_down_n = 0;
    drop_ttl_n = 0;
    drop_fault_n = 0;
    fault = None;
    tracer = None;
    cs = counters_for metrics;
  }
  in
  t.complete <- (fun () -> on_complete t);
  t.arrive_pcb <- (fun p -> on_arrive t p);
  t

let forward t (p : Packet.t) =
  t.offered <- t.offered + 1;
  if not t.up then begin
    t.lost <- t.lost + 1;
    t.drop_down_n <- t.drop_down_n + 1;
    Obs.Metrics.Counter.inc t.cs.m_drop_down;
    trace t ~kind:`Drop_loss p;
    Packet.release p
  end
  else if p.hops > Packet.ttl_limit then begin
    (* A routing loop ate the packet: account for it like any other drop
       instead of letting it vanish from all stats. *)
    t.lost <- t.lost + 1;
    t.drop_ttl_n <- t.drop_ttl_n + 1;
    Obs.Metrics.Counter.inc t.cs.m_drop_ttl;
    trace t ~kind:`Drop_ttl p;
    Logs.warn (fun m -> m "Link: TTL exceeded, dropping %a" Packet.pp p);
    Packet.release p
  end
  else if Link_table.busy t.tbl t.slot then begin
    if not (Queue_disc.enqueue t.queue p) then begin
      t.drop_queue_n <- t.drop_queue_n + 1;
      Obs.Metrics.Counter.inc t.cs.m_drop_queue;
      trace t ~kind:`Drop_queue p;
      Packet.release p
    end
  end
  else transmit t p

let send t (p : Packet.t) =
  Packet.guard "Link.send" p;
  Packet.set_hops p (p.hops + 1);
  match t.fault with
  | None -> forward t p
  | Some f -> (
      match f p with
      | `Pass -> forward t p
      | `Drop ->
          t.lost <- t.lost + 1;
          t.drop_fault_n <- t.drop_fault_n + 1;
          Obs.Metrics.Counter.inc t.cs.m_drop_loss;
          trace t ~kind:`Drop_loss p;
          Packet.release p
      | `Replace p' ->
          (* The injector handed back a different physical packet: the
             original's arena slot is ours to recycle. *)
          if p' != p then Packet.release p;
          forward t p'
      | `Duplicate ->
          (* Clone before forwarding: [forward] may drop-and-release [p]
             (down link, TTL, full queue), after which it is not
             clonable. *)
          let q = Packet.clone p in
          forward t p;
          forward t q
      | `Delay d -> Engine.after_unit t.engine ~delay:d (fun () -> forward t p))

let src t = t.src

let dst t = t.dst

let bandwidth_bps t = t.bandwidth_bps

let delay_s t = t.delay_s

let set_delay t d =
  if d < 0. then invalid_arg "Link.set_delay: negative delay";
  t.delay_s <- d

let queue t = t.queue

let set_loss t loss = t.loss <- loss

let packets_sent t = t.sent

let packets_delivered t = t.delivered

let packets_lost t = t.lost

let packets_offered t = t.offered

let packets_in_flight t = t.in_flight

let drops_queue t = t.drop_queue_n

let drops_loss t = t.drop_loss_n

let drops_down t = t.drop_down_n

let drops_ttl t = t.drop_ttl_n

let drops_fault t = t.drop_fault_n

let busy t = Link_table.busy t.tbl t.slot

let utilization t ~now =
  if now <= 0. then 0. else Link_table.busy_time t.tbl t.slot /. now

let set_tracer t f = t.tracer <- Some f

let set_fault t f = t.fault <- f

let set_up t up =
  if t.up <> up then t.flaps <- t.flaps + 1;
  t.up <- up

let is_up t = t.up

let flaps t = t.flaps
