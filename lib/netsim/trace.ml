type kind = Tx | Drop_queue | Drop_loss | Drop_ttl | Deliver

type event = {
  time : float;
  kind : kind;
  link_src : int;
  link_dst : int;
  uid : int;
  flow : int;
  size : int;
}

let kind_index = function
  | Tx -> 0
  | Drop_queue -> 1
  | Drop_loss -> 2
  | Drop_ttl -> 3
  | Deliver -> 4

let n_kinds = 5

let kind_label = function
  | Tx -> "tx"
  | Drop_queue -> "drop_queue"
  | Drop_loss -> "drop_loss"
  | Drop_ttl -> "drop_ttl"
  | Deliver -> "deliver"

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* write position *)
  mutable recorded : int;
  (* Per-kind counts of *retained* events, maintained on record so
     [count] is O(1) instead of an O(capacity) array scan. *)
  retained_by_kind : int array;
  (* Monotonic per-kind totals published to the metrics registry (a
     thin client of the same plane everything else reports into). *)
  registry_by_kind : Obs.Metrics.Counter.t array;
}

let create ?(capacity = 100_000) ?(sink = Obs.Sink.null) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let metrics = sink.Obs.Sink.metrics in
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    recorded = 0;
    retained_by_kind = Array.make n_kinds 0;
    registry_by_kind =
      Array.init n_kinds (fun i ->
          let kind =
            match i with
            | 0 -> Tx
            | 1 -> Drop_queue
            | 2 -> Drop_loss
            | 3 -> Drop_ttl
            | _ -> Deliver
          in
          Obs.Metrics.counter metrics
            ~labels:[ ("kind", kind_label kind) ]
            "netsim_trace_events_total");
  }

let record t ev =
  (match t.buffer.(t.next) with
  | Some old ->
      (* Rotating an old event out: keep the retained counts exact. *)
      t.retained_by_kind.(kind_index old.kind) <-
        t.retained_by_kind.(kind_index old.kind) - 1
  | None -> ());
  t.buffer.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1;
  t.retained_by_kind.(kind_index ev.kind) <-
    t.retained_by_kind.(kind_index ev.kind) + 1;
  Obs.Metrics.Counter.inc t.registry_by_kind.(kind_index ev.kind)

let attach t link =
  let link_src = Node.id (Link.src link) and link_dst = Node.id (Link.dst link) in
  Link.set_tracer link (fun ~time ~kind:k (p : Packet.t) ->
      let kind =
        match k with
        | `Tx -> Tx
        | `Drop_queue -> Drop_queue
        | `Drop_loss -> Drop_loss
        | `Drop_ttl -> Drop_ttl
        | `Deliver -> Deliver
      in
      record t
        { time; kind; link_src; link_dst; uid = p.uid; flow = p.flow; size = p.size })

let events t =
  (* Oldest first: from [next] around the ring. *)
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.buffer.(idx) with Some ev -> out := ev :: !out | None -> ()
  done;
  List.rev !out

let count t ~kind = t.retained_by_kind.(kind_index kind)

let total_recorded t = t.recorded

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.recorded <- 0;
  Array.fill t.retained_by_kind 0 n_kinds 0

let kind_char = function
  | Tx -> '+'
  | Drop_queue -> 'd'
  | Drop_loss -> 'x'
  | Drop_ttl -> 't'
  | Deliver -> 'r'

let pp_event ppf e =
  Format.fprintf ppf "%c %.6f %d %d %d %d %d" (kind_char e.kind) e.time e.link_src
    e.link_dst e.flow e.size e.uid

let to_text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Format.asprintf "%a" pp_event e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
