type injector = Packet.t -> Link.fault_action

type t = {
  engine : Engine.t;
  rng : Stats.Rng.t;
  (* Per-link injector chains, keyed by physical link identity (links are
     few and long-lived; an assoc list keeps netsim free of hashing over
     abstract types). *)
  mutable chains : (Link.t * injector list ref) list;
  mutable corruptions : int;
  mutable duplications : int;
  mutable reorderings : int;
  mutable drops_injected : int;
  mutable link_flaps : int;
  mutable partitions : int;
  mutable crashes : int;
  mutable graceful_leaves : int;
  obs : Obs.Sink.t;
  m_corruptions : Obs.Metrics.Counter.t;
  m_duplications : Obs.Metrics.Counter.t;
  m_reorderings : Obs.Metrics.Counter.t;
  m_drops : Obs.Metrics.Counter.t;
  m_flaps : Obs.Metrics.Counter.t;
  m_partitions : Obs.Metrics.Counter.t;
  m_crashes : Obs.Metrics.Counter.t;
  m_leaves : Obs.Metrics.Counter.t;
}

let fault_scope = Obs.Journal.scope "netsim.fault"

(* Structural faults (flaps, partitions, churn) are journaled; the
   per-packet injections (corrupt/duplicate/reorder/drop) are counted in
   the registry only, so a high-rate injector cannot flood protocol
   transitions out of the bounded journal ring. *)
let journal t ?severity ev =
  Obs.Sink.event t.obs ~time:(Engine.now t.engine) ?severity fault_scope ev

let create engine =
  let obs = Engine.obs engine in
  let m = obs.Obs.Sink.metrics in
  {
    engine;
    rng = Engine.split_rng engine;
    chains = [];
    corruptions = 0;
    duplications = 0;
    reorderings = 0;
    drops_injected = 0;
    link_flaps = 0;
    partitions = 0;
    crashes = 0;
    graceful_leaves = 0;
    obs;
    m_corruptions = Obs.Metrics.counter m "netsim_fault_corruptions_total";
    m_duplications = Obs.Metrics.counter m "netsim_fault_duplications_total";
    m_reorderings = Obs.Metrics.counter m "netsim_fault_reorderings_total";
    m_drops = Obs.Metrics.counter m "netsim_fault_drops_injected_total";
    m_flaps = Obs.Metrics.counter m "netsim_fault_link_flaps_total";
    m_partitions = Obs.Metrics.counter m "netsim_fault_partitions_total";
    m_crashes = Obs.Metrics.counter m "netsim_fault_crashes_total";
    m_leaves = Obs.Metrics.counter m "netsim_fault_graceful_leaves_total";
  }

(* ------------------------------------------------- failures / partitions *)

let down_at t link ~time =
  ignore
    (Engine.at t.engine ~time (fun () ->
         if Link.is_up link then begin
           t.link_flaps <- t.link_flaps + 1;
           Obs.Metrics.Counter.inc t.m_flaps;
           journal t ~severity:Obs.Journal.Warn
             (Obs.Journal.Fault
                {
                  kind = "link_down";
                  detail =
                    Printf.sprintf "%d->%d"
                      (Node.id (Link.src link))
                      (Node.id (Link.dst link));
                });
           Link.set_up link false
         end))

let up_at t link ~time =
  ignore
    (Engine.at t.engine ~time (fun () ->
         if not (Link.is_up link) then
           journal t
             (Obs.Journal.Fault
                {
                  kind = "link_up";
                  detail =
                    Printf.sprintf "%d->%d"
                      (Node.id (Link.src link))
                      (Node.id (Link.dst link));
                });
         Link.set_up link true))

let flap t link ~down_at:d ~up_at:u =
  if u <= d then invalid_arg "Fault.flap: up_at must follow down_at";
  down_at t link ~time:d;
  up_at t link ~time:u

let flap_every t link ~first_down ~period ~down_for ~until =
  if period <= 0. then invalid_arg "Fault.flap_every: period must be positive";
  if down_for <= 0. || down_for >= period then
    invalid_arg "Fault.flap_every: down_for must be in (0, period)";
  let rec cycle d =
    if d <= until then begin
      flap t link ~down_at:d ~up_at:(d +. down_for);
      cycle (d +. period)
    end
  in
  cycle first_down

let partition t ~links ~from_ ~until =
  if until <= from_ then invalid_arg "Fault.partition: until must follow from_";
  if links = [] then invalid_arg "Fault.partition: empty link set";
  ignore
    (Engine.at t.engine ~time:from_ (fun () ->
         t.partitions <- t.partitions + 1;
         Obs.Metrics.Counter.inc t.m_partitions;
         journal t ~severity:Obs.Journal.Error
           (Obs.Journal.Fault
              {
                kind = "partition";
                detail = Printf.sprintf "%d links until %g" (List.length links) until;
              });
         List.iter
           (fun l ->
             if Link.is_up l then begin
               t.link_flaps <- t.link_flaps + 1;
               Obs.Metrics.Counter.inc t.m_flaps;
               Link.set_up l false
             end)
           links));
  ignore
    (Engine.at t.engine ~time:until (fun () ->
         journal t
           (Obs.Journal.Fault
              {
                kind = "partition_heal";
                detail = Printf.sprintf "%d links" (List.length links);
              });
         List.iter (fun l -> Link.set_up l true) links))

(* -------------------------------------------------------------- injectors *)

let chain_for t link =
  match List.find_opt (fun (l, _) -> l == link) t.chains with
  | Some (_, c) -> c
  | None ->
      let c = ref [] in
      t.chains <- (link, c) :: t.chains;
      (* One combined hook per link: injectors run in installation order,
         first non-`Pass action wins. *)
      Link.set_fault link
        (Some
           (fun p ->
             let rec eval = function
               | [] -> `Pass
               | inj :: rest -> (
                   match inj p with `Pass -> eval rest | act -> act)
             in
             eval (List.rev !c)));
      c

let windowed t ~from_ ~until fire =
  let from_ = Option.value from_ ~default:neg_infinity in
  let until = Option.value until ~default:infinity in
  fun p ->
    let now = Engine.now t.engine in
    if now < from_ || now > until then `Pass else fire p

let check_rate rate =
  if rate < 0. || rate > 1. then invalid_arg "Fault: injector rate out of [0,1]"

let add_injector t link inj =
  let c = chain_for t link in
  c := inj :: !c

let corrupt t link ?from_ ?until ~rate ~mangle () =
  check_rate rate;
  add_injector t link
    (windowed t ~from_ ~until (fun p ->
         if Stats.Rng.uniform t.rng < rate then begin
           t.corruptions <- t.corruptions + 1;
           Obs.Metrics.Counter.inc t.m_corruptions;
           `Replace (mangle t.rng p)
         end
         else `Pass))

let duplicate t link ?from_ ?until ~rate () =
  check_rate rate;
  add_injector t link
    (windowed t ~from_ ~until (fun _ ->
         if Stats.Rng.uniform t.rng < rate then begin
           t.duplications <- t.duplications + 1;
           Obs.Metrics.Counter.inc t.m_duplications;
           `Duplicate
         end
         else `Pass))

let reorder t link ?from_ ?until ~rate ~extra_delay () =
  check_rate rate;
  if extra_delay <= 0. then invalid_arg "Fault.reorder: extra_delay must be positive";
  add_injector t link
    (windowed t ~from_ ~until (fun _ ->
         if Stats.Rng.uniform t.rng < rate then begin
           t.reorderings <- t.reorderings + 1;
           Obs.Metrics.Counter.inc t.m_reorderings;
           `Delay (Stats.Rng.uniform_pos t.rng *. extra_delay)
         end
         else `Pass))

let drop t link ?from_ ?until ~rate () =
  check_rate rate;
  add_injector t link
    (windowed t ~from_ ~until (fun _ ->
         if Stats.Rng.uniform t.rng < rate then begin
           t.drops_injected <- t.drops_injected + 1;
           Obs.Metrics.Counter.inc t.m_drops;
           `Drop
         end
         else `Pass))

let clear_injectors t link =
  match List.find_opt (fun (l, _) -> l == link) t.chains with
  | None -> ()
  | Some (_, c) ->
      c := [];
      t.chains <- List.filter (fun (l, _) -> not (l == link)) t.chains;
      Link.set_fault link None

(* ------------------------------------------------------------------ churn *)

type churn_kind = Crash | Graceful

let churn t ~at ~kind apply =
  ignore
    (Engine.at t.engine ~time:at (fun () ->
         (match kind with
         | Crash ->
             t.crashes <- t.crashes + 1;
             Obs.Metrics.Counter.inc t.m_crashes;
             journal t ~severity:Obs.Journal.Warn
               (Obs.Journal.Fault { kind = "crash"; detail = "" })
         | Graceful ->
             t.graceful_leaves <- t.graceful_leaves + 1;
             Obs.Metrics.Counter.inc t.m_leaves;
             journal t (Obs.Journal.Fault { kind = "graceful_leave"; detail = "" }));
         apply kind))

(* --------------------------------------------------------------- counters *)

let corruptions t = t.corruptions

let duplications t = t.duplications

let reorderings t = t.reorderings

let drops_injected t = t.drops_injected

let link_flaps t = t.link_flaps

let partitions t = t.partitions

let crashes t = t.crashes

let graceful_leaves t = t.graceful_leaves

let describe t =
  Printf.sprintf
    "faults: %d flaps, %d partitions, %d corruptions, %d duplications, %d \
     reorderings, %d injected drops, %d crashes, %d graceful leaves"
    t.link_flaps t.partitions t.corruptions t.duplications t.reorderings
    t.drops_injected t.crashes t.graceful_leaves
