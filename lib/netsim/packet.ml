type payload = ..

type payload += Raw of int

type dst = Unicast of int | Multicast of int

type t = {
  uid : int;
  flow : int;
  size : int;
  src : int;
  dst : dst;
  payload : payload;
  created : float;
  mutable hops : int;
}

(* Atomic so packet allocation is race-free when independent engines run
   in parallel sweep domains.  Uids are process-global identifiers for
   traces and pretty-printing only — no protocol logic reads them — so
   cross-domain interleaving of the sequence is harmless. *)
let next_uid = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add next_uid 1 + 1

let make ~flow ~size ~src ~dst ~created payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  { uid = fresh_uid (); flow; size; src; dst; payload; created; hops = 0 }

let clone p = { p with uid = fresh_uid () }

let ttl_limit = 64

let pp ppf p =
  let dst =
    match p.dst with
    | Unicast n -> Printf.sprintf "n%d" n
    | Multicast g -> Printf.sprintf "g%d" g
  in
  Format.fprintf ppf "#%d flow=%d %dB n%d->%s hops=%d" p.uid p.flow p.size
    p.src dst p.hops
