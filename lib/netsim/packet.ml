type payload = ..

type payload += Raw of int

type dst = Unicast of int | Multicast of int

type t = {
  mutable uid : int;
  mutable flow : int;
  mutable size : int;
  mutable src : int;
  mutable dst : dst;
  mutable payload : payload;
  mutable created : float;
  mutable hops : int;
  (* Arena plumbing.  [pooled] is fixed at allocation: arena records are
     recycled through {!release}/{!alloc}, heap records (from {!make} and
     the exhaustion fallback) are left to the GC and [release] on them is
     a no-op — so code outside the simulator may hold a {!make}d packet
     as long as it likes.  [live] is the use-after-free guard: false
     between release and the next acquire. *)
  pooled : bool;
  mutable live : bool;
}

exception Use_after_free of string

(* Atomic so packet allocation is race-free when independent engines run
   in parallel sweep domains.  Uids are process-global identifiers for
   traces and pretty-printing only — no protocol logic reads them — so
   cross-domain interleaving of the sequence is harmless. *)
let next_uid = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add next_uid 1 + 1

let ttl_limit = 64

let dummy_payload = Raw (-1)

(* ------------------------------------------------------------- arena *)

module Pool = struct
  type pool = {
    slots : t array;  (* free records, [0, top) *)
    capacity : int;
    mutable top : int;
    mutable debug : bool;
    mutable acquired : int;
    mutable recycled : int;
    mutable exhausted : int;  (* heap fallbacks after the arena ran dry *)
  }

  let default_capacity = 4096

  let blank () =
    {
      uid = 0;
      flow = 0;
      size = 0;
      src = 0;
      dst = Unicast (-1);
      payload = dummy_payload;
      created = 0.;
      hops = 0;
      pooled = true;
      live = false;
    }

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Packet.Pool.create: capacity must be >= 1";
    {
      slots = Array.init capacity (fun _ -> blank ());
      capacity;
      top = capacity;
      debug = false;
      acquired = 0;
      recycled = 0;
      exhausted = 0;
    }

  (* One arena per domain: engines never share packets across domains
     (the sweep ownership rule), and successive engines in one domain
     reuse the same records.  Never read from another domain. *)
  let key : pool Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())

  let domain () = Domain.DLS.get key

  let set_debug pl on = pl.debug <- on

  let debug pl = pl.debug

  let capacity pl = pl.capacity

  let free pl = pl.top

  let in_use pl = pl.capacity - pl.top

  let acquired pl = pl.acquired

  let recycled pl = pl.recycled

  let exhausted pl = pl.exhausted
end

(* Sentinel for empty data-structure slots (queue rings).  Flagged as a
   released arena record so any accidental send trips the {!guard}. *)
let dummy = Pool.blank ()

(* ------------------------------------------------------- constructors *)

let init p ~flow ~size ~src ~dst ~created payload =
  p.uid <- fresh_uid ();
  p.flow <- flow;
  p.size <- size;
  p.src <- src;
  p.dst <- dst;
  p.payload <- payload;
  p.created <- created;
  p.hops <- 0;
  p.live <- true;
  p

let make ~flow ~size ~src ~dst ~created payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  {
    uid = fresh_uid ();
    flow;
    size;
    src;
    dst;
    payload;
    created;
    hops = 0;
    pooled = false;
    live = true;
  }

let alloc ~flow ~size ~src ~dst ~created payload =
  if size <= 0 then invalid_arg "Packet.alloc: size must be positive";
  let pl = Pool.domain () in
  if pl.Pool.top > 0 then begin
    pl.Pool.top <- pl.Pool.top - 1;
    pl.Pool.acquired <- pl.Pool.acquired + 1;
    init (Array.unsafe_get pl.Pool.slots pl.Pool.top) ~flow ~size ~src ~dst
      ~created payload
  end
  else begin
    pl.Pool.exhausted <- pl.Pool.exhausted + 1;
    make ~flow ~size ~src ~dst ~created payload
  end

let release p =
  if p.pooled then begin
    if not p.live then begin
      if (Pool.domain ()).Pool.debug then
        raise (Use_after_free (Printf.sprintf "double release of packet #%d" p.uid))
    end
    else begin
      let pl = Pool.domain () in
      p.live <- false;
      (* Drop sentinel references so a recycled slot never pins a payload
         (or its protocol record) across reuse. *)
      p.payload <- dummy_payload;
      if pl.Pool.debug then begin
        (* Poison: a stale holder reading a released record sees values no
           real packet carries. *)
        p.hops <- min_int;
        p.size <- min_int;
        p.flow <- min_int
      end;
      (* [top = capacity] can only be exceeded by records released into a
         different domain's arena; drop those to the GC instead. *)
      if pl.Pool.top < pl.Pool.capacity then begin
        Array.unsafe_set pl.Pool.slots pl.Pool.top p;
        pl.Pool.top <- pl.Pool.top + 1;
        pl.Pool.recycled <- pl.Pool.recycled + 1
      end
    end
  end

let is_live p = p.live

let set_hops p n = p.hops <- n

(* Same uid on purpose: a corrupted packet is the same physical packet
   with mangled contents, and traces identify it by uid.  The copy is a
   heap record regardless of the source's poolness — fault injectors may
   hold it across the Replace dispatch, after the original is released. *)
let with_payload p payload = { p with payload; pooled = false; live = true }

(* Use-after-free tripwire on the simulator entry points (send/inject):
   two flag tests, so it is cheap enough to leave always on.  The richer
   diagnostics (poisoned fields) need the pool's debug mode. *)
let guard ctx p =
  if p.pooled && not p.live then
    raise (Use_after_free (Printf.sprintf "%s: packet #%d was released" ctx p.uid))

let copy_into q p =
  q.flow <- p.flow;
  q.size <- p.size;
  q.src <- p.src;
  q.dst <- p.dst;
  q.payload <- p.payload;
  q.created <- p.created;
  q.hops <- p.hops;
  q

let clone p =
  if p.pooled then begin
    let pl = Pool.domain () in
    if pl.Pool.top > 0 then begin
      pl.Pool.top <- pl.Pool.top - 1;
      pl.Pool.acquired <- pl.Pool.acquired + 1;
      let q = Array.unsafe_get pl.Pool.slots pl.Pool.top in
      q.uid <- fresh_uid ();
      q.live <- true;
      copy_into q p
    end
    else begin
      pl.Pool.exhausted <- pl.Pool.exhausted + 1;
      { p with uid = fresh_uid (); pooled = false; live = true }
    end
  end
  else { p with uid = fresh_uid () }

let pp ppf p =
  let dst =
    match p.dst with
    | Unicast n -> Printf.sprintf "n%d" n
    | Multicast g -> Printf.sprintf "g%d" g
  in
  Format.fprintf ppf "#%d flow=%d %dB n%d->%s hops=%d" p.uid p.flow p.size
    p.src dst p.hops
