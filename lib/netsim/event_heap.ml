(* The heap is stored as two parallel arrays: [times] is a flat float
   array (unboxed storage, no per-key float box) holding the sort keys,
   [events] holds the payload records (callback, tie-break seq, cancel
   flag).  Sifts move a hole instead of swapping, and the engine-facing
   fast path ([next_time] / [pop_exn]) allocates nothing per event. *)

type event = {
  seq : int;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable times : float array;
  mutable events : event array;
  mutable len : int;
  mutable live : int;
  mutable next_seq : int;
}

let dummy_event = { seq = -1; callback = ignore; cancelled = true }

(* All-float cell (raw double storage): [pop_due] writes the popped time
   here so the caller's clock update is a plain store. *)
type time_cell = { mutable cell_time : float }

let initial_capacity = 64

let create () =
  {
    times = Array.make initial_capacity 0.;
    events = Array.make initial_capacity dummy_event;
    len = 0;
    live = 0;
    next_seq = 0;
  }

(* The sift loops keep every float comparison inside one function body:
   without flambda a float passed to a helper (even a tiny [before]
   predicate) is boxed at each call, which costs an allocation per heap
   level per operation — so the comparisons are hand-inlined and the
   keys stay in FP registers.  Indices are bounded by [t.len] (a local
   invariant of each loop), so array accesses use the unsafe
   primitives. *)

(* Move the hole at [i] up until (time, seq) fits, then drop the event in. *)
let sift_up t i time ev =
  let times = t.times and events = t.events in
  let seq = ev.seq in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let tp = Array.unsafe_get times parent in
    if time < tp || (time = tp && seq < (Array.unsafe_get events parent).seq)
    then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set events !i (Array.unsafe_get events parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set events !i ev

(* Refill the hole at the root with the element at index [t.len] (the
   old last element, already outside the tree), sifting it down.  The
   key is loaded here rather than passed as an argument so it is never
   boxed. *)
let sift_down_root t =
  let times = t.times and events = t.events in
  let len = t.len in
  let time = Array.unsafe_get times len in
  let ev = Array.unsafe_get events len in
  Array.unsafe_set events len dummy_event;
  let seq = ev.seq in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= len then continue := false
    else begin
      let r = l + 1 in
      let child =
        if r >= len then l
        else begin
          let tl = Array.unsafe_get times l and tr = Array.unsafe_get times r in
          if tr < tl then r
          else if tl < tr then l
          else if
            (Array.unsafe_get events r).seq < (Array.unsafe_get events l).seq
          then r
          else l
        end
      in
      let tc = Array.unsafe_get times child in
      if time < tc || (time = tc && seq < (Array.unsafe_get events child).seq)
      then continue := false
      else begin
        Array.unsafe_set times !i tc;
        Array.unsafe_set events !i (Array.unsafe_get events child);
        i := child
      end
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set events !i ev

let ensure_capacity t =
  if t.len = Array.length t.events then begin
    let cap = 2 * Array.length t.events in
    let times = Array.make cap 0. in
    let events = Array.make cap dummy_event in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.events 0 events 0 t.len;
    t.times <- times;
    t.events <- events
  end

let add t ~time callback =
  if Float.is_nan time then invalid_arg "Event_heap.add: NaN time";
  ensure_capacity t;
  let ev = { seq = t.next_seq; callback; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1) time ev;
  ev

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let is_cancelled ev = ev.cancelled

(* Remove the root, refilling the hole with the last element. *)
let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then sift_down_root t else t.events.(0) <- dummy_event

(* Drop cancelled events as they surface so the root is live (or the
   heap empty) on return. *)
let purge t =
  while t.len > 0 && t.events.(0).cancelled do
    remove_root t
  done

let next_time t =
  purge t;
  if t.len = 0 then Float.nan else t.times.(0)

let pop_exn t =
  purge t;
  if t.len = 0 then invalid_arg "Event_heap.pop_exn: empty heap";
  let ev = t.events.(0) in
  remove_root t;
  t.live <- t.live - 1;
  (* Mark fired events so cancelling them later is a no-op that does not
     disturb the live count. *)
  ev.cancelled <- true;
  ev.callback

(* Engine fast path: pop the root if it is due at or before [limit],
   writing its time into [into] (an all-float cell, so the store does
   not box) — one call, no boxed float return, instead of a
   [next_time] / [pop_exn] pair. *)
let pop_due t ~limit ~into =
  purge t;
  if t.len = 0 then None
  else begin
    let time = Array.unsafe_get t.times 0 in
    if time > limit then None
    else begin
      let ev = t.events.(0) in
      remove_root t;
      t.live <- t.live - 1;
      ev.cancelled <- true;
      into.cell_time <- time;
      Some ev.callback
    end
  end

let pop t =
  purge t;
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, pop_exn t)
  end

let peek_time t =
  let time = next_time t in
  if Float.is_nan time then None else Some time

let size t = t.live

let is_empty t = t.live = 0

(* O(n) structural audit for the invariant checker: every stored key is a
   real float, the (time, seq) heap order holds on every parent/child
   edge, and the live count matches the stored non-cancelled events. *)
let well_formed t =
  if t.len < 0 || t.len > Array.length t.times
     || Array.length t.times <> Array.length t.events
     || t.live < 0 || t.live > t.len
  then false
  else begin
    let ok = ref true in
    let stored_live = ref 0 in
    for i = 0 to t.len - 1 do
      if Float.is_nan t.times.(i) then ok := false;
      if not t.events.(i).cancelled then incr stored_live;
      if i > 0 then begin
        let p = (i - 1) / 2 in
        let tp = t.times.(p) and ti = t.times.(i) in
        if tp > ti || (tp = ti && t.events.(p).seq > t.events.(i).seq) then
          ok := false
      end
    done;
    !ok && !stored_live = t.live
  end
