(* The heap is stored as two parallel arrays: [times] is a flat float
   array (unboxed storage, no per-key float box) holding the sort keys,
   [events] holds the payload records (callback, tie-break seq, cancel
   flag).  Sifts move a hole instead of swapping, and the engine-facing
   fast path ([next_time] / [pop_exn]) allocates nothing per event. *)

(* An event is either a plain closure ([callback]) or a packet callback
   pair ([pcb] applied to [parg]) — the latter lets the link layer
   schedule a packet delivery with one preallocated per-link function
   instead of a fresh closure per in-flight packet.  [parg] doubles as
   the discriminator: the [Packet.dummy] sentinel means closure form.

   Records handed out by [add] are permanent (the caller holds a
   [handle] and may [cancel] it at any point after firing), but most of
   the engine's traffic — link transmissions and arrivals — never keeps
   a handle; those go through [add_unit]/[add_pkt].  All records are
   freshly allocated with initializing stores.  A freelist of recycled
   records was tried here and measured ~25 ns/event SLOWER than minor
   allocation: parked records promote to the major heap, so every field
   store on reuse goes through the [caml_modify] write barrier (young
   closure into old record = remembered-set traffic), which costs far
   more than the bump allocation it saves.  Don't reintroduce it. *)
type event = {
  mutable seq : int;
  mutable callback : unit -> unit;
  mutable pcb : Packet.t -> unit;
  mutable parg : Packet.t;
  mutable cancelled : bool;
  (* True while the record sits in the heap arrays; false once popped or
     drained into a batch.  Lets [cancel] know whether the live count
     still covers this event: a batched-but-unfired event is cancellable
     (the dispatch loop skips it) without touching [live]. *)
  mutable in_heap : bool;
}

type handle = event

type t = {
  mutable times : float array;
  mutable events : event array;
  mutable len : int;
  mutable live : int;
  mutable next_seq : int;
}

let ignore_pcb (_ : Packet.t) = ()

let dummy_event =
  {
    seq = -1;
    callback = ignore;
    pcb = ignore_pcb;
    parg = Packet.dummy;
    cancelled = true;
    in_heap = false;
  }

(* All-float cell (raw double storage): [pop_due] writes the popped time
   here so the caller's clock update is a plain store. *)
type time_cell = { mutable cell_time : float }

let initial_capacity = 64

let create () =
  {
    times = Array.make initial_capacity 0.;
    events = Array.make initial_capacity dummy_event;
    len = 0;
    live = 0;
    next_seq = 0;
  }

(* The sift loops keep every float comparison inside one function body:
   without flambda a float passed to a helper (even a tiny [before]
   predicate) is boxed at each call, which costs an allocation per heap
   level per operation — so the comparisons are hand-inlined and the
   keys stay in FP registers.  Indices are bounded by [t.len] (a local
   invariant of each loop), so array accesses use the unsafe
   primitives. *)

(* Move the hole at [i] up until (time, seq) fits, then drop the event in. *)
let sift_up t i time ev =
  let times = t.times and events = t.events in
  let seq = ev.seq in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let tp = Array.unsafe_get times parent in
    if time < tp || (time = tp && seq < (Array.unsafe_get events parent).seq)
    then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set events !i (Array.unsafe_get events parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set events !i ev

(* Refill the hole at the root with the element at index [t.len] (the
   old last element, already outside the tree), sifting it down.  The
   key is loaded here rather than passed as an argument so it is never
   boxed. *)
let sift_down_root t =
  let times = t.times and events = t.events in
  let len = t.len in
  let time = Array.unsafe_get times len in
  let ev = Array.unsafe_get events len in
  Array.unsafe_set events len dummy_event;
  let seq = ev.seq in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= len then continue := false
    else begin
      let r = l + 1 in
      let child =
        if r >= len then l
        else begin
          let tl = Array.unsafe_get times l and tr = Array.unsafe_get times r in
          if tr < tl then r
          else if tl < tr then l
          else if
            (Array.unsafe_get events r).seq < (Array.unsafe_get events l).seq
          then r
          else l
        end
      in
      let tc = Array.unsafe_get times child in
      if time < tc || (time = tc && seq < (Array.unsafe_get events child).seq)
      then continue := false
      else begin
        Array.unsafe_set times !i tc;
        Array.unsafe_set events !i (Array.unsafe_get events child);
        i := child
      end
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set events !i ev

let ensure_capacity t =
  if t.len = Array.length t.events then begin
    let cap = 2 * Array.length t.events in
    let times = Array.make cap 0. in
    let events = Array.make cap dummy_event in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.events 0 events 0 t.len;
    t.times <- times;
    t.events <- events
  end

let schedule t time ev =
  ev.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1) time ev

let add t ~time callback =
  if Float.is_nan time then invalid_arg "Event_heap.add: NaN time";
  ensure_capacity t;
  (* Permanent record: the returned handle may outlive the firing, so
     this one can never go back to the freelist. *)
  let ev =
    {
      seq = 0;
      callback;
      pcb = ignore_pcb;
      parg = Packet.dummy;
      cancelled = false;
      in_heap = true;
    }
  in
  schedule t time ev;
  ev

let add_unit t ~time callback =
  if Float.is_nan time then invalid_arg "Event_heap.add_unit: NaN time";
  ensure_capacity t;
  schedule t time
    {
      seq = 0;
      callback;
      pcb = ignore_pcb;
      parg = Packet.dummy;
      cancelled = false;
      in_heap = true;
    }

let add_pkt t ~time pcb p =
  if Float.is_nan time then invalid_arg "Event_heap.add_pkt: NaN time";
  ensure_capacity t;
  schedule t time
    { seq = 0; callback = ignore; pcb; parg = p; cancelled = false; in_heap = true }

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    (* An event drained into a dispatch batch has already left the live
       count; cancelling it only tells the dispatch loop to skip it. *)
    if ev.in_heap then t.live <- t.live - 1
  end

let is_cancelled ev = ev.cancelled

(* Remove the root, refilling the hole with the last element. *)
let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then sift_down_root t else t.events.(0) <- dummy_event

(* Drop cancelled events as they surface so the root is live (or the
   heap empty) on return. *)
let purge t =
  while t.len > 0 && t.events.(0).cancelled do
    let ev = t.events.(0) in
    remove_root t;
    ev.in_heap <- false
  done

let next_time t =
  purge t;
  if t.len = 0 then Float.nan else t.times.(0)

let pop_exn t =
  purge t;
  if t.len = 0 then invalid_arg "Event_heap.pop_exn: empty heap";
  let ev = t.events.(0) in
  remove_root t;
  t.live <- t.live - 1;
  ev.in_heap <- false;
  (* Mark fired events so cancelling them later is a no-op that does not
     disturb the live count. *)
  ev.cancelled <- true;
  (* Extract the action before recycling the record.  Packet-form events
     need a wrapper closure here; the engine's hot loops use the batch /
     [pop_fire] paths instead, so this only costs on the generic API. *)
  if ev.parg != Packet.dummy then begin
    let f = ev.pcb and p = ev.parg in
    fun () -> f p
  end
  else ev.callback

(* Engine fast path: pop the root if it is due at or before [limit],
   writing its time into [into] (an all-float cell, so the store does
   not box) — one call, no boxed float return, instead of a
   [next_time] / [pop_exn] pair. *)
let pop_due t ~limit ~into =
  purge t;
  if t.len = 0 then None
  else begin
    let time = Array.unsafe_get t.times 0 in
    if time > limit then None
    else begin
      let ev = t.events.(0) in
      remove_root t;
      t.live <- t.live - 1;
      ev.in_heap <- false;
      ev.cancelled <- true;
      into.cell_time <- time;
      if ev.parg != Packet.dummy then begin
        let f = ev.pcb and p = ev.parg in
        Some (fun () -> f p)
      end
      else Some ev.callback
    end
  end

(* Pop-and-fire for [Engine.step]: removes the earliest live event
   (writing its time into [into]) and runs it.  Returns [false] on an
   empty heap. *)
let pop_fire t ~into =
  purge t;
  if t.len = 0 then false
  else begin
    let time = Array.unsafe_get t.times 0 in
    let ev = t.events.(0) in
    remove_root t;
    t.live <- t.live - 1;
    ev.in_heap <- false;
    ev.cancelled <- true;
    into.cell_time <- time;
    if ev.parg != Packet.dummy then ev.pcb ev.parg else ev.callback ();
    true
  end

(* ------------------------------------------------- batched dispatch *)

(* [drain_or_fire] (below) needs the tie test before committing to a
   batch: in a binary heap the second-smallest key is one of the root's
   two children, so two float loads decide whether the due root shares
   its timestamp with any other event. *)

(* Scratch buffer the engine drains same-timestamp events into.  Reused
   across batches; [clear] drops the event references so fired closures
   are not pinned between runs. *)
type batch = { mutable b_evs : event array; mutable b_n : int }

let batch () = { b_evs = Array.make 16 dummy_event; b_n = 0 }

let batch_length b = b.b_n

let batch_push b ev =
  if b.b_n = Array.length b.b_evs then begin
    let evs = Array.make (2 * b.b_n) dummy_event in
    Array.blit b.b_evs 0 evs 0 b.b_n;
    b.b_evs <- evs
  end;
  Array.unsafe_set b.b_evs b.b_n ev;
  b.b_n <- b.b_n + 1

(* Drops the event references so a parked batch does not pin fired
   closures (or their packets) between runs. *)
let batch_clear (_ : t) b =
  for i = 0 to b.b_n - 1 do
    Array.unsafe_set b.b_evs i dummy_event
  done;
  b.b_n <- 0

(* Drain every live event sharing the earliest due timestamp into [b],
   in (time, seq) dispatch order, writing that timestamp into [into].
   Amortizes the heap sifts: one batch of k events costs k sifts but a
   single root-time comparison per event afterwards, and events drained
   together are dispatched without re-touching the heap.  Returns the
   batch size (0 when nothing is due at or before [limit]).

   Drained events leave the live count but are NOT marked cancelled —
   an earlier callback in the same batch may still cancel a later one,
   which must remain observable to the dispatch loop. *)
let drain_due t ~limit ~into b =
  b.b_n <- 0;
  purge t;
  if t.len = 0 then 0
  else begin
    let t0 = Array.unsafe_get t.times 0 in
    if t0 > limit then 0
    else begin
      into.cell_time <- t0;
      let continue = ref true in
      while !continue do
        let ev = Array.unsafe_get t.events 0 in
        remove_root t;
        t.live <- t.live - 1;
        ev.in_heap <- false;
        batch_push b ev;
        purge t;
        if t.len = 0 || Array.unsafe_get t.times 0 <> t0 then continue := false
      done;
      b.b_n
    end
  end

(* Fused engine-loop step.  Exact timestamp ties are rare in a
   continuous-time simulator, so paying the batch machinery (push,
   claim, clear, the abort handler) on every event would cost more than
   the sifts it amortizes.  When the due root's timestamp is unique —
   neither heap child shares it — this pops and fires directly, zero
   batch traffic; only a real tie falls back to [drain_due].  [pre] is
   the engine's per-event accounting, run between the clock write and
   the callback so observable order matches the batch path
   (claim, account, fire).  Returns [-1] after firing a lone event, [0]
   when nothing is due, and the batch length (>= 1) after draining a
   tie into [b] with nothing fired yet.  A cancelled child at the root's
   timestamp can force the batch path spuriously; [drain_due] purges it
   and the batch just comes back short. *)
let drain_or_fire t ~limit ~into b ~pre =
  purge t;
  if t.len = 0 then 0
  else begin
    let t0 = Array.unsafe_get t.times 0 in
    if t0 > limit then 0
    else if
      (t.len > 1 && Array.unsafe_get t.times 1 = t0)
      || (t.len > 2 && Array.unsafe_get t.times 2 = t0)
    then drain_due t ~limit ~into b
    else begin
      let ev = Array.unsafe_get t.events 0 in
      remove_root t;
      t.live <- t.live - 1;
      ev.in_heap <- false;
      ev.cancelled <- true;
      into.cell_time <- t0;
      pre ();
      if ev.parg != Packet.dummy then ev.pcb ev.parg else ev.callback ();
      -1
    end
  end

(* Claim the [i]-th batched event for dispatch: marks it fired and
   reports whether it was still live.  Split from [batch_run] so the
   engine can do its per-event accounting between claim and call,
   matching the ordering of the single-event pop path. *)
let batch_claim b i =
  let ev = Array.unsafe_get b.b_evs i in
  if ev.cancelled then false
  else begin
    ev.cancelled <- true;
    true
  end

let batch_run b i =
  let ev = Array.unsafe_get b.b_evs i in
  if ev.parg != Packet.dummy then ev.pcb ev.parg else ev.callback ()

(* Put batched-but-undispatched events back in the heap at [time] (the
   timestamp they were drained at): [stop] or an exception can abort a
   batch mid-dispatch, and the survivors must stay pending.  Their
   original seq values ride along, so dispatch order on the next drain
   is exactly what it would have been. *)
let requeue t b ~from ~time =
  for i = from to b.b_n - 1 do
    let ev = Array.unsafe_get b.b_evs i in
    if not ev.cancelled then begin
      ensure_capacity t;
      t.len <- t.len + 1;
      t.live <- t.live + 1;
      ev.in_heap <- true;
      sift_up t (t.len - 1) time ev
    end
  done

let pop t =
  purge t;
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, pop_exn t)
  end

let peek_time t =
  let time = next_time t in
  if Float.is_nan time then None else Some time

let size t = t.live

let is_empty t = t.live = 0

(* O(n) structural audit for the invariant checker: every stored key is a
   real float, the (time, seq) heap order holds on every parent/child
   edge, and the live count matches the stored non-cancelled events. *)
let well_formed t =
  if t.len < 0 || t.len > Array.length t.times
     || Array.length t.times <> Array.length t.events
     || t.live < 0 || t.live > t.len
  then false
  else begin
    let ok = ref true in
    let stored_live = ref 0 in
    for i = 0 to t.len - 1 do
      if Float.is_nan t.times.(i) then ok := false;
      (* Every record physically in the arrays must carry the flag; a
         false flag here means a batch drain leaked one back. *)
      if not t.events.(i).in_heap then ok := false;
      if not t.events.(i).cancelled then incr stored_live;
      if i > 0 then begin
        let p = (i - 1) / 2 in
        let tp = t.times.(p) and ti = t.times.(i) in
        if tp > ti || (tp = ti && t.events.(p).seq > t.events.(i).seq) then
          ok := false
      end
    done;
    !ok && !stored_live = t.live
  end
