(** Typed metrics registry: labelled counters, gauges and histograms.

    One registry serves a whole simulation.  Components look their
    instruments up once at construction time ({!counter} / {!gauge} /
    {!histogram} are amortized O(1) hash lookups) and then record through
    the returned handle with a plain field update — no hashing, no
    allocation on the hot path.

    A registry created with {!null} is a disabled sink: handles it hands
    out are valid and O(1) to record into, but nothing is retained and
    {!snapshot} is empty, so instrumented code pays only the cost of one
    mutable-field update when observability is off. *)

type t

type labels = (string * string) list
(** Label pairs; order is irrelevant (normalized internally). *)

module Counter : sig
  type t

  val inc : t -> unit

  val add : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** O(1): updates count/sum/min/max and one power-of-two bucket. *)

  val count : t -> int

  val sum : t -> float

  val mean : t -> float
  (** 0 when empty. *)

  val min_value : t -> float
  (** +inf when empty. *)

  val max_value : t -> float
  (** -inf when empty. *)
end

val create : unit -> t

val null : t
(** The shared disabled registry.  [enabled null = false]; instruments
    obtained from it are unregistered dummies. *)

val enabled : t -> bool

val counter : t -> ?labels:labels -> string -> Counter.t
(** Registers (or finds) the counter [name] with [labels].  Raises
    [Invalid_argument] if the name+labels is already registered as a
    different metric kind. *)

val gauge : t -> ?labels:labels -> string -> Gauge.t

val histogram : t -> ?labels:labels -> string -> Histogram.t

(** A point-in-time reading of one registered instrument. *)
type sample = {
  name : string;
  labels : labels;  (** sorted by key *)
  value : value;
}

and value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; min : float; max : float }

val snapshot : t -> sample list
(** All registered instruments, sorted by (name, labels). *)

val counter_value : t -> ?labels:labels -> string -> int
(** Current value of one counter; 0 when absent (or the registry is the
    null sink). *)

val sum_counters : t -> string -> int
(** Sum of the counter [name] over every label set it is registered
    with. *)

val labelled_values : t -> string -> (labels * int) list
(** Every label set the counter [name] is registered with, paired with
    its current value, sorted — the per-kind breakdown of a labelled
    counter family (e.g. [tfmcc_rt_send_error_total]). *)

val describe : ?prefix:string -> t -> string
(** One-line ["name{k=v}=n, ..."] rendering of every counter whose name
    starts with [prefix] (default: all), for human-readable summaries.
    ["(no metrics)"] when nothing matches. *)

val to_json : t -> Json.t
(** [[{"name":..,"labels":{..},"kind":..,"value"|"count"/"sum"/..}]] *)
