type labels = (string * string) list

module Counter = struct
  type t = { mutable v : int }

  let make () = { v = 0 }

  let inc c = c.v <- c.v + 1

  let add c n = c.v <- c.v + n

  let value c = c.v
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0. }

  let set g v = g.v <- v

  let value g = g.v
end

module Histogram = struct
  (* The float state lives in its own all-float record: all-float
     records store raw doubles, so [observe] — called on per-packet hot
     paths — updates in place instead of boxing a float per field. *)
  type floats = { mutable sum : float; mutable min : float; mutable max : float }

  type t = { mutable count : int; fs : floats }

  let make () =
    { count = 0; fs = { sum = 0.; min = infinity; max = neg_infinity } }

  let observe h x =
    h.count <- h.count + 1;
    let fs = h.fs in
    fs.sum <- fs.sum +. x;
    if x < fs.min then fs.min <- x;
    if x > fs.max then fs.max <- x

  let count h = h.count

  let sum h = h.fs.sum

  let mean h = if h.count = 0 then 0. else h.fs.sum /. float_of_int h.count

  let min_value h = h.fs.min

  let max_value h = h.fs.max
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type t = {
  on : bool;
  tbl : (string * labels, instrument) Hashtbl.t;
}

let create () = { on = true; tbl = Hashtbl.create 64 }

let null = { on = false; tbl = Hashtbl.create 1 }

let enabled t = t.on

let normalize labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let lookup t ~labels name ~make ~extract =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some inst -> (
      match extract inst with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name inst)))
  | None ->
      let inst = make () in
      if t.on then Hashtbl.add t.tbl key inst;
      (match extract inst with Some x -> x | None -> assert false)

let counter t ?(labels = []) name =
  lookup t ~labels name
    ~make:(fun () -> C (Counter.make ()))
    ~extract:(function C c -> Some c | _ -> None)

let gauge t ?(labels = []) name =
  lookup t ~labels name
    ~make:(fun () -> G (Gauge.make ()))
    ~extract:(function G g -> Some g | _ -> None)

let histogram t ?(labels = []) name =
  lookup t ~labels name
    ~make:(fun () -> H (Histogram.make ()))
    ~extract:(function H h -> Some h | _ -> None)

type sample = {
  name : string;
  labels : labels;
  value : value;
}

and value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; min : float; max : float }

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) inst acc ->
      let value =
        match inst with
        | C c -> Counter_v (Counter.value c)
        | G g -> Gauge_v (Gauge.value g)
        | H h ->
            Histogram_v
              {
                count = Histogram.count h;
                sum = Histogram.sum h;
                min = Histogram.min_value h;
                max = Histogram.max_value h;
              }
      in
      { name; labels; value } :: acc)
    t.tbl []
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, normalize labels) with
  | Some (C c) -> Counter.value c
  | _ -> 0

let sum_counters t name =
  Hashtbl.fold
    (fun (n, _) inst acc ->
      match inst with C c when n = name -> acc + Counter.value c | _ -> acc)
    t.tbl 0

let labelled_values t name =
  Hashtbl.fold
    (fun (n, labels) inst acc ->
      match inst with
      | C c when n = name -> (labels, Counter.value c) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort compare

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let describe ?(prefix = "") t =
  let entries =
    snapshot t
    |> List.filter_map (fun s ->
           if not (String.starts_with ~prefix s.name) then None
           else
             match s.value with
             | Counter_v v ->
                 Some
                   (Printf.sprintf "%s%s=%d" s.name (labels_to_string s.labels) v)
             | Gauge_v _ | Histogram_v _ -> None)
  in
  match entries with
  | [] -> "(no metrics)"
  | _ -> String.concat ", " entries

let to_json t =
  Json.Arr
    (List.map
       (fun s ->
         let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels) in
         let value_fields =
           match s.value with
           | Counter_v v -> [ ("kind", Json.Str "counter"); ("value", Json.Int v) ]
           | Gauge_v v -> [ ("kind", Json.Str "gauge"); ("value", Json.Float v) ]
           | Histogram_v { count; sum; min; max } ->
               [
                 ("kind", Json.Str "histogram");
                 ("count", Json.Int count);
                 ("sum", Json.Float sum);
                 ("min", Json.Float min);
                 ("max", Json.Float max);
               ]
         in
         Json.Obj (("name", Json.Str s.name) :: ("labels", labels) :: value_fields))
       (snapshot t))
