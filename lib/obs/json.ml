type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.12g" v)

let rec to_buffer buf t =
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> add_float buf v
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  to_buffer buf t;
  Buffer.contents buf

(* ------------------------------------------------------------- parsing *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     with Failure _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Basic-multilingual-plane code points only, encoded
                      as UTF-8; we never emit surrogate pairs. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | _ -> fail (Printf.sprintf "unexpected character '%c'" c))
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg
