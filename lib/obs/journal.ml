type severity = Debug | Info | Warn | Error

type scope = { component : string; session : int; node : int }

let scope ?(session = -1) ?(node = -1) component = { component; session; node }

type event =
  | Round_start of { round : int; duration : float; max_rtt : float }
  | Clr_change of { prev : int; clr : int }
  | Clr_drop of { clr : int; reason : string }
  | Rate_change of { from_bps : float; to_bps : float; reason : string }
  | Cwnd_change of { from_pkts : float; to_pkts : float; reason : string }
  | Slowstart_exit of { rate_bps : float }
  | Loss_event of { p : float }
  | Starvation of { rate_bps : float }
  | Timeout of { what : string }
  | Malformed_drop of { what : string }
  | Defense_reject of { rx : int; what : string }
  | Clr_damped of { rx : int }
  | Quarantine of { rx : int; until_ : float }
  | Join
  | Leave of { explicit : bool }
  | Fault of { kind : string; detail : string }
  | Task of { id : string; outcome : string; attempts : int; detail : string }
  | Note of string

type entry = {
  time : float;
  severity : severity;
  scope : scope;
  event : event;
}

type t = {
  on : bool;
  capacity : int;
  buffer : entry option array;
  mutable next : int;
  mutable recorded : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  { on = true; capacity; buffer = Array.make capacity None; next = 0; recorded = 0 }

let null = { on = false; capacity = 1; buffer = [| None |]; next = 0; recorded = 0 }

let enabled t = t.on

let record t ~time ?(severity = Info) scope event =
  if t.on then begin
    t.buffer.(t.next) <- Some { time; severity; scope; event };
    t.next <- (t.next + 1) mod t.capacity;
    t.recorded <- t.recorded + 1
  end

let entries t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.buffer.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  List.rev !out

let total_recorded t = t.recorded

let retained t = Stdlib.min t.recorded t.capacity

let dropped t = t.recorded - retained t

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.recorded <- 0

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let count t ?component ?min_severity () =
  List.length
    (List.filter
       (fun e ->
         (match component with
         | Some c -> e.scope.component = c
         | None -> true)
         &&
         match min_severity with
         | Some s -> severity_rank e.severity >= severity_rank s
         | None -> true)
       (entries t))

let count_events t pred =
  List.length (List.filter (fun e -> pred e.event) (entries t))

let event_name = function
  | Round_start _ -> "round_start"
  | Clr_change _ -> "clr_change"
  | Clr_drop _ -> "clr_drop"
  | Rate_change _ -> "rate_change"
  | Cwnd_change _ -> "cwnd_change"
  | Slowstart_exit _ -> "slowstart_exit"
  | Loss_event _ -> "loss_event"
  | Starvation _ -> "starvation"
  | Timeout _ -> "timeout"
  | Malformed_drop _ -> "malformed_drop"
  | Defense_reject _ -> "defense_reject"
  | Clr_damped _ -> "clr_damped"
  | Quarantine _ -> "quarantine"
  | Join -> "join"
  | Leave _ -> "leave"
  | Fault _ -> "fault"
  | Task _ -> "sweep_task"
  | Note _ -> "note"

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let event_fields = function
  | Round_start { round; duration; max_rtt } ->
      [
        ("round", Json.Int round);
        ("duration", Json.Float duration);
        ("max_rtt", Json.Float max_rtt);
      ]
  | Clr_change { prev; clr } -> [ ("prev", Json.Int prev); ("clr", Json.Int clr) ]
  | Clr_drop { clr; reason } ->
      [ ("clr", Json.Int clr); ("reason", Json.Str reason) ]
  | Rate_change { from_bps; to_bps; reason } ->
      [
        ("from_bps", Json.Float from_bps);
        ("to_bps", Json.Float to_bps);
        ("reason", Json.Str reason);
      ]
  | Cwnd_change { from_pkts; to_pkts; reason } ->
      [
        ("from_pkts", Json.Float from_pkts);
        ("to_pkts", Json.Float to_pkts);
        ("reason", Json.Str reason);
      ]
  | Slowstart_exit { rate_bps } -> [ ("rate_bps", Json.Float rate_bps) ]
  | Loss_event { p } -> [ ("p", Json.Float p) ]
  | Starvation { rate_bps } -> [ ("rate_bps", Json.Float rate_bps) ]
  | Timeout { what } -> [ ("what", Json.Str what) ]
  | Malformed_drop { what } -> [ ("what", Json.Str what) ]
  | Defense_reject { rx; what } ->
      [ ("rx", Json.Int rx); ("what", Json.Str what) ]
  | Clr_damped { rx } -> [ ("rx", Json.Int rx) ]
  | Quarantine { rx; until_ } ->
      [ ("rx", Json.Int rx); ("until", Json.Float until_) ]
  | Join -> []
  | Leave { explicit } -> [ ("explicit", Json.Bool explicit) ]
  | Fault { kind; detail } ->
      [ ("kind", Json.Str kind); ("detail", Json.Str detail) ]
  | Task { id; outcome; attempts; detail } ->
      [
        ("id", Json.Str id);
        ("outcome", Json.Str outcome);
        ("attempts", Json.Int attempts);
        ("detail", Json.Str detail);
      ]
  | Note note -> [ ("note", Json.Str note) ]

let pp_entry ppf e =
  let fields =
    event_fields e.event
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v))
    |> String.concat " "
  in
  Format.fprintf ppf "%.6f %-5s %s s=%d n=%d %s%s%s" e.time
    (severity_name e.severity) e.scope.component e.scope.session e.scope.node
    (event_name e.event)
    (if fields = "" then "" else " ")
    fields

let to_text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Format.asprintf "%a" pp_entry e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let entry_to_json e =
  Json.Obj
    ([
       ("t", Json.Float e.time);
       ("severity", Json.Str (severity_name e.severity));
       ("component", Json.Str e.scope.component);
       ("session", Json.Int e.scope.session);
       ("node", Json.Int e.scope.node);
       ("event", Json.Str (event_name e.event));
     ]
    @ event_fields e.event)

let to_json t = Json.Arr (List.map entry_to_json (entries t))
