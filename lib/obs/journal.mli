(** Structured protocol journal: a bounded ring of timestamped, typed
    protocol events with severity and per-session/per-node scope.

    Where the metrics registry answers "how many / how much", the journal
    answers "what happened, in which order": feedback-round starts, CLR
    switches, rate changes, slowstart exits, loss events, fault
    injections, malformed-packet drops.  Recording is O(1) into a
    preallocated ring; the oldest entries are overwritten once the
    capacity is exceeded ({!total_recorded} keeps counting).

    A journal created as {!null} is disabled: {!record} returns without
    touching the ring, so agents can journal unconditionally. *)

type severity = Debug | Info | Warn | Error

(** Who emitted the event.  [component] is a dotted path such as
    ["tfmcc.sender"] or ["netsim.fault"]; [session] and [node] are [-1]
    when not applicable. *)
type scope = { component : string; session : int; node : int }

val scope : ?session:int -> ?node:int -> string -> scope

(** Typed protocol transitions.  Constructors are shared across agents
    (a PGMCC acker switch is a {!Clr_change} in spirit and in type); the
    scope's component disambiguates the emitter. *)
type event =
  | Round_start of { round : int; duration : float; max_rtt : float }
  | Clr_change of { prev : int; clr : int }  (** [prev = -1]: first election *)
  | Clr_drop of { clr : int; reason : string }  (** timeout / leave / starvation *)
  | Rate_change of { from_bps : float; to_bps : float; reason : string }
  | Cwnd_change of { from_pkts : float; to_pkts : float; reason : string }
  | Slowstart_exit of { rate_bps : float }
  | Loss_event of { p : float }  (** new loss event; [p] = loss-event rate *)
  | Starvation of { rate_bps : float }
  | Timeout of { what : string }  (** RTO, nofeedback timer, idle guard *)
  | Malformed_drop of { what : string }
  | Defense_reject of { rx : int; what : string }
      (** adversarial-receiver defense rejected a report: plausibility,
          outlier screen, spam rate-limit, or quarantine *)
  | Clr_damped of { rx : int }
      (** a CLR takeover by [rx] was suppressed by flap hold-down *)
  | Quarantine of { rx : int; until_ : float }
      (** [rx]'s suspicion score crossed the threshold; its reports are
          ignored until [until_] *)
  | Join
  | Leave of { explicit : bool }
  | Fault of { kind : string; detail : string }
  | Task of { id : string; outcome : string; attempts : int; detail : string }
      (** terminal state of one supervised sweep task: [id] is
          ["<experiment>/s<seed>"], [outcome] one of
          ok/failed/timeout/stalled/violation/skipped/resumed *)
  | Note of string

type entry = {
  time : float;
  severity : severity;
  scope : scope;
  event : event;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of the most recent [capacity] entries (default 65536). *)

val null : t
(** The shared disabled journal: {!record} is a no-op, {!enabled} is
    false. *)

val enabled : t -> bool

val record : t -> time:float -> ?severity:severity -> scope -> event -> unit
(** O(1); default severity [Info]. *)

val entries : t -> entry list
(** Oldest first (within the retained window). *)

val total_recorded : t -> int
(** Every entry ever recorded, including those rotated out. *)

val dropped : t -> int
(** Entries lost to ring rotation ([total_recorded - retained]). *)

val clear : t -> unit
(** Empties the ring and resets {!total_recorded}. *)

val count : t -> ?component:string -> ?min_severity:severity -> unit -> int
(** Retained entries matching the filters. *)

val count_events : t -> (event -> bool) -> int

val event_name : event -> string
(** Stable snake_case tag, e.g. ["clr_change"] (also the JSON tag). *)

val severity_name : severity -> string

val pp_entry : Format.formatter -> entry -> unit
(** One line: [time sev component session/node event {fields}]. *)

val to_text : t -> string

val entry_to_json : entry -> Json.t

val to_json : t -> Json.t
