type t = {
  metrics : Metrics.t;
  journal : Journal.t;
}

let create ?journal_capacity () =
  { metrics = Metrics.create (); journal = Journal.create ?capacity:journal_capacity () }

let null = { metrics = Metrics.null; journal = Journal.null }

let enabled t = Metrics.enabled t.metrics || Journal.enabled t.journal

let event t ~time ?severity scope ev = Journal.record t.journal ~time ?severity scope ev

let to_json t =
  Json.Obj
    [ ("metrics", Metrics.to_json t.metrics); ("journal", Journal.to_json t.journal) ]
