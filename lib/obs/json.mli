(** Minimal JSON document builder (emission only).

    The observability layer must produce machine-readable output without
    pulling in a JSON dependency the container may not have; this module
    covers exactly what {!Metrics}, {!Journal} and the CLI need: building
    a document and serializing it with proper string escaping.  Non-finite
    floats serialize as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val to_buffer : Buffer.t -> t -> unit
