(** Minimal JSON document builder and reader.

    The observability layer must produce machine-readable output without
    pulling in a JSON dependency the container may not have; this module
    covers exactly what {!Metrics}, {!Journal}, the CLI and the bench
    harness need: building a document, serializing it with proper string
    escaping, and parsing documents we (or tools like us) wrote.
    Non-finite floats serialize as [null] (JSON has no representation
    for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parses one JSON document (object, array, or scalar).  Numbers
    without [.]/[e] that fit an OCaml [int] come back as [Int], all
    others as [Float]; [\u] escapes outside the BMP are not supported
    (we never emit them).  [Error] carries a message with the byte
    offset of the first problem. *)
