(** The observability plane handed to a simulation: one metrics registry
    plus one protocol journal.

    A sink is created once per run, attached to the {e engine}
    ([Netsim.Engine.create ~obs]), and every component that holds the
    engine publishes through it.  {!null} disables both halves at
    near-zero hot-path cost. *)

type t = {
  metrics : Metrics.t;
  journal : Journal.t;
}

val create : ?journal_capacity:int -> unit -> t

val null : t
(** Both halves disabled ({!Metrics.null} and {!Journal.null}). *)

val enabled : t -> bool

val event :
  t -> time:float -> ?severity:Journal.severity -> Journal.scope ->
  Journal.event -> unit
(** Shorthand for [Journal.record t.journal]. *)

val to_json : t -> Json.t
(** [{"metrics": [...], "journal": [...]}] *)
