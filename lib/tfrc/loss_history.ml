type t = {
  n : int;
  weights : float array;
  first_interval : unit -> float option;
  (* Closed intervals, newest first; length <= n. *)
  mutable intervals : float list;
  mutable synced : bool;  (* first arrival seen (sets the seq baseline) *)
  mutable expected : int;  (* next expected sequence number *)
  mutable event_start_seq : int;  (* seq of first packet of current loss event *)
  mutable event_start_time : float;
  mutable events : int;
  mutable seen : int;
  mutable lost : int;
  (* Position of the synthetic first interval in [intervals], newest = 0;
     -1 when absent. *)
  mutable synthetic_pos : int;
  (* Recent loss gaps (first lost seq, detection time), newest first,
     capped — the raw material for App. A's remodel. *)
  mutable gaps : (int * float) list;
}

let max_gap_log = 64

(* Standard WALI weights: 1 for the newer half, then linearly decaying;
   for n = 8 this gives 1,1,1,1,0.8,0.6,0.4,0.2 (the paper's
   5,5,5,5,4,3,2,1 rescaled). *)
let make_weights n =
  Array.init n (fun i ->
      Float.min 1. (2. *. float_of_int (n - i) /. float_of_int (n + 2)))

let create ?(n_intervals = 8) ?(first_interval = fun () -> None) () =
  if n_intervals < 2 then invalid_arg "Loss_history.create: need at least 2 intervals";
  {
    n = n_intervals;
    weights = make_weights n_intervals;
    first_interval;
    intervals = [];
    synced = false;
    expected = 0;
    event_start_seq = -1;
    event_start_time = neg_infinity;
    events = 0;
    seen = 0;
    lost = 0;
    synthetic_pos = -1;
    gaps = [];
  }

let weighted_average t values =
  (* values: newest first, up to n entries *)
  let num = ref 0. and den = ref 0. in
  List.iteri
    (fun i v ->
      if i < t.n then begin
        num := !num +. (t.weights.(i) *. v);
        den := !den +. t.weights.(i)
      end)
    values;
  if !den = 0. then 0. else !num /. !den

let open_interval t =
  if t.event_start_seq < 0 then 0.
  else float_of_int (t.expected - t.event_start_seq)

let mean_interval t =
  match t.intervals with
  | [] -> infinity
  | _ ->
      let closed = weighted_average t t.intervals in
      (* Include the open interval in place of the oldest if it increases
         the average (i.e. decreases p). *)
      let with_open = weighted_average t (open_interval t :: t.intervals) in
      Float.max closed with_open

let loss_event_rate t =
  let m = mean_interval t in
  if m = infinity then 0. else Float.min 1. (1. /. Float.max 1. m)

let has_loss t = t.events > 0

let loss_events t = t.events

let packets_seen t = t.seen

let packets_lost t = t.lost

let closed_intervals t = t.intervals

let push_interval t v =
  t.intervals <- v :: t.intervals;
  if List.length t.intervals > t.n then
    t.intervals <- List.filteri (fun i _ -> i < t.n) t.intervals;
  if t.synthetic_pos >= 0 then begin
    t.synthetic_pos <- t.synthetic_pos + 1;
    if t.synthetic_pos >= t.n then t.synthetic_pos <- -1
  end

let new_loss_event t ~first_lost_seq ~now =
  (if t.events = 0 then begin
     (* First ever loss event: seed the history with a synthetic interval
        (App. B), falling back to the packet count so far. *)
     let interval =
       match t.first_interval () with
       | Some v when v >= 1. -> v
       | Some _ | None -> Float.max 1. (float_of_int t.seen)
     in
     push_interval t interval;
     t.synthetic_pos <- 0
   end
   else begin
     let len = first_lost_seq - t.event_start_seq in
     push_interval t (Float.max 1. (float_of_int len))
   end);
  t.events <- t.events + 1;
  t.event_start_seq <- first_lost_seq;
  t.event_start_time <- now

let on_packet t ~seq ~now ~rtt =
  if seq < 0 then invalid_arg "Loss_history.on_packet: negative seq";
  if rtt <= 0. then invalid_arg "Loss_history.on_packet: non-positive rtt";
  if not t.synced then begin
    (* First arrival defines the baseline: a receiver joining an ongoing
       session must not treat the sequence prefix as loss. *)
    t.synced <- true;
    t.seen <- 1;
    t.expected <- seq + 1
  end
  else if seq >= t.expected then begin
    let n_lost = seq - t.expected in
    if n_lost > 0 then begin
      t.lost <- t.lost + n_lost;
      let first_lost = t.expected in
      t.gaps <- (first_lost, now) :: t.gaps;
      if List.length t.gaps > max_gap_log then
        t.gaps <- List.filteri (fun i _ -> i < max_gap_log) t.gaps;
      (* Aggregate: losses within one RTT of the current event's start
         belong to it and open no new interval. *)
      if t.events = 0 || now -. t.event_start_time > rtt then
        new_loss_event t ~first_lost_seq:first_lost ~now
    end;
    t.seen <- t.seen + 1;
    t.expected <- seq + 1
  end
(* seq < expected: duplicate or late packet; ignore. *)

let remodel t ~rtt =
  if rtt <= 0. then invalid_arg "Loss_history.remodel: rtt must be positive";
  match List.rev t.gaps with
  | [] -> ()
  | (seq0, time0) :: rest ->
      (* Re-aggregate the retained gaps under the new RTT. *)
      let events =
        List.fold_left
          (fun acc (seq, time) ->
            match acc with
            | (_, last_time) :: _ when time -. last_time <= rtt -> acc
            | _ -> (seq, time) :: acc)
          [ (seq0, time0) ]
          rest
      in
      (* events: newest first.  Intervals between consecutive events. *)
      let rec intervals_of = function
        | (s1, _) :: ((s2, _) :: _ as tail) ->
            Float.max 1. (float_of_int (s1 - s2)) :: intervals_of tail
        | [ _ ] | [] -> []
      in
      let rebuilt = intervals_of events in
      (* Keep whatever older history lies beyond the gap log: the
         previous intervals not covered by the rebuilt ones.  Old
         interval i (newest first) spans [boundary - v, boundary) in
         sequence space, with boundary starting at the current event's
         first lost seq; it is covered by the rebuilt history iff it
         lies entirely within the retained gap log (whose oldest gap is
         [seq0]).  The synthetic first interval (App. B) corresponds to
         no real gap and is never covered, nor is anything older. *)
      let n_covered =
        let boundary = ref t.event_start_seq in
        let covered = ref 0 in
        (try
           List.iteri
             (fun i v ->
               if i = t.synthetic_pos then raise Exit;
               let lo = !boundary - int_of_float v in
               if lo >= seq0 then begin
                 incr covered;
                 boundary := lo
               end
               else raise Exit)
             t.intervals
         with Exit -> ());
        !covered
      in
      let older = List.filteri (fun i _ -> i >= n_covered) t.intervals in
      t.intervals <-
        List.filteri (fun i _ -> i < t.n) (rebuilt @ older);
      (* The synthetic interval survives the splice when present: shift
         its position by the replacement. *)
      (if t.synthetic_pos >= 0 then begin
         let pos = List.length rebuilt + (t.synthetic_pos - n_covered) in
         t.synthetic_pos <- (if pos < t.n then pos else -1)
       end);
      (match events with
      | (s, tm) :: _ ->
          t.event_start_seq <- s;
          t.event_start_time <- tm;
          t.events <- Stdlib.max t.events (List.length events)
      | [] -> ())

let rescale_synthetic t ~factor =
  if factor <= 0. then invalid_arg "Loss_history.rescale_synthetic: factor must be positive";
  if t.synthetic_pos >= 0 then begin
    t.intervals <-
      List.mapi
        (fun i v -> if i = t.synthetic_pos then Float.max 1. (v *. factor) else v)
        t.intervals;
    t.synthetic_pos <- -1
  end

let weights t = Array.copy t.weights
