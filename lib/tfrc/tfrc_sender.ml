let t_mbi = 64.  (* max backoff interval, seconds (RFC 3448) *)

type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  flow : int;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  s : int;  (* packet size *)
  initial_rate : float;
  mutable running : bool;
  mutable rate : float;  (* X, bytes/s *)
  mutable srtt : float option;
  mutable seq : int;
  mutable in_slowstart : bool;
  mutable pending_echo : (float * float) option;  (* receiver ts, arrival time *)
  mutable nofeedback : Netsim.Engine.handle option;
  mutable send_timer : Netsim.Engine.handle option;
  mutable sent : int;
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_sent : Obs.Metrics.Counter.t;
  m_feedback : Obs.Metrics.Counter.t;
  m_nofeedback : Obs.Metrics.Counter.t;
  m_rate : Obs.Metrics.Gauge.t;
}

let jnl t ?severity ev =
  Obs.Sink.event t.obs ~time:(Netsim.Engine.now t.engine) ?severity t.scope ev

let min_rate t = float_of_int t.s /. t_mbi

let rtt_or_default t = Option.value t.srtt ~default:0.5

let cancel t handle_field =
  match handle_field with
  | Some h ->
      Netsim.Engine.cancel t.engine h;
      None
  | None -> None

let rec send_packet t =
  t.send_timer <- None;
  if t.running then begin
    let now = Netsim.Engine.now t.engine in
    let echo_ts, echo_delay =
      match t.pending_echo with
      | Some (ts, arrived) -> (ts, now -. arrived)
      | None -> (nan, 0.)
    in
    let payload =
      Wire.Data
        {
          conn = t.conn;
          seq = t.seq;
          ts = now;
          rtt = rtt_or_default t;
          echo_ts;
          echo_delay;
        }
    in
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    Obs.Metrics.Counter.inc t.m_sent;
    Obs.Metrics.Gauge.set t.m_rate t.rate;
    let p =
      Netsim.Packet.alloc ~flow:t.flow ~size:t.s ~src:(Netsim.Node.id t.src)
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.dst))
        ~created:now payload
    in
    Netsim.Topology.inject t.topo p;
    let delay = float_of_int t.s /. t.rate in
    t.send_timer <- Some (Netsim.Engine.after t.engine ~delay (fun () -> send_packet t))
  end

let rec restart_nofeedback t =
  t.nofeedback <- cancel t t.nofeedback;
  let delay = Float.max (4. *. rtt_or_default t) (2. *. float_of_int t.s /. t.rate) in
  t.nofeedback <-
    Some
      (Netsim.Engine.after t.engine ~delay (fun () ->
           t.nofeedback <- None;
           if t.running then begin
             (* Halve the rate in the absence of feedback. *)
             let from_bps = t.rate in
             t.rate <- Float.max (min_rate t) (t.rate /. 2.);
             Obs.Metrics.Counter.inc t.m_nofeedback;
             jnl t ~severity:Obs.Journal.Warn
               (Obs.Journal.Timeout { what = "nofeedback" });
             if t.rate <> from_bps then
               jnl t ~severity:Obs.Journal.Debug
                 (Obs.Journal.Rate_change
                    { from_bps; to_bps = t.rate; reason = "nofeedback-halve" });
             restart_nofeedback t
           end))

let on_feedback t ~ts ~echo_ts ~echo_delay ~p ~x_recv =
  let now = Netsim.Engine.now t.engine in
  t.pending_echo <- Some (ts, now);
  (if not (Float.is_nan echo_ts) then begin
     let sample = now -. echo_ts -. echo_delay in
     if sample > 0. then
       t.srtt <-
         (match t.srtt with
         | None -> Some sample
         | Some srtt -> Some ((0.9 *. srtt) +. (0.1 *. sample)))
   end);
  let r = rtt_or_default t in
  (* A zero receive-rate report (the receiver's window saw no packets at
     a very low sending rate) must not pin the rate at the floor: only
     apply the 2·X_recv cap when it is meaningful. *)
  let recv_cap = if x_recv > 0. then 2. *. x_recv else infinity in
  Obs.Metrics.Counter.inc t.m_feedback;
  let from_bps = t.rate in
  (if p > 0. then begin
     if t.in_slowstart then begin
       t.in_slowstart <- false;
       jnl t (Obs.Journal.Slowstart_exit { rate_bps = t.rate })
     end;
     let x_calc = Tcp_model.Padhye.throughput ~s:t.s ~rtt:r p in
     t.rate <- Float.max (Float.min x_calc recv_cap) (min_rate t)
   end
   else begin
     (* Slowstart: double, bounded by twice the receive rate. *)
     let target = Float.min (2. *. t.rate) recv_cap in
     t.rate <- Float.max (Float.max target t.initial_rate) (min_rate t)
   end);
  if t.rate <> from_bps then
    jnl t ~severity:Obs.Journal.Debug
      (Obs.Journal.Rate_change
         {
           from_bps;
           to_bps = t.rate;
           reason = (if p > 0. then "equation" else "slowstart-double");
         });
  restart_nofeedback t

let create topo ~conn ~flow ~src ~dst ?(packet_size = Wire.data_size)
    ?initial_rate () =
  if packet_size <= 0 then invalid_arg "Tfrc_sender.create: packet size";
  let initial_rate =
    Option.value initial_rate ~default:(float_of_int packet_size)
  in
  let obs = Netsim.Engine.obs (Netsim.Topology.engine topo) in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("conn", string_of_int conn) ] in
  let t =
    {
      topo;
      engine = Netsim.Topology.engine topo;
      conn;
      flow;
      src;
      dst;
      s = packet_size;
      initial_rate;
      running = false;
      rate = initial_rate;
      srtt = None;
      seq = 0;
      in_slowstart = true;
      pending_echo = None;
      nofeedback = None;
      send_timer = None;
      sent = 0;
      obs;
      scope =
        Obs.Journal.scope ~session:conn ~node:(Netsim.Node.id src) "tfrc.sender";
      m_sent = Obs.Metrics.counter metrics ~labels "tfrc_sender_packets_sent_total";
      m_feedback = Obs.Metrics.counter metrics ~labels "tfrc_sender_feedback_total";
      m_nofeedback =
        Obs.Metrics.counter metrics ~labels "tfrc_sender_nofeedback_timeouts_total";
      m_rate = Obs.Metrics.gauge metrics ~labels "tfrc_sender_rate_bytes_per_s";
    }
  in
  Netsim.Node.attach src (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Feedback { conn; ts; echo_ts; echo_delay; p; x_recv } when conn = t.conn
        ->
          if t.running then on_feedback t ~ts ~echo_ts ~echo_delay ~p ~x_recv
      | _ -> ());
  t

let start t ~at =
  t.running <- true;
  ignore
    (Netsim.Engine.at t.engine ~time:at (fun () ->
         send_packet t;
         restart_nofeedback t))

let stop t =
  t.running <- false;
  t.send_timer <- cancel t t.send_timer;
  t.nofeedback <- cancel t t.nofeedback

let rate_bytes_per_s t = t.rate

let rtt t = t.srtt

let packets_sent t = t.sent

let in_slowstart t = t.in_slowstart
