(* Samples live in a ring of parallel arrays (unboxed float times next
   to int byte counts) instead of a queue of records: recording an
   arrival allocates nothing, which matters because every receiver runs
   this once per data packet.  The scalar float state sits in its own
   all-float record — all-float records store raw doubles, so the
   per-packet [last_time] update is a plain store rather than a fresh
   float box. *)

type scalars = {
  mutable window : float;
  mutable first_time : float;  (* nan until the first arrival *)
  mutable last_time : float;
}

type t = {
  sc : scalars;
  mutable times : float array;  (* ring, oldest at [head] *)
  mutable sizes : int array;
  mutable head : int;
  mutable count : int;
  mutable in_window_bytes : int;
  mutable total : int;
}

let initial_capacity = 64

let create ?(window = 1.) () =
  if window <= 0. then invalid_arg "Rate_meter.create: window must be positive";
  {
    sc = { window; first_time = nan; last_time = neg_infinity };
    times = Array.make initial_capacity 0.;
    sizes = Array.make initial_capacity 0;
    head = 0;
    count = 0;
    in_window_bytes = 0;
    total = 0;
  }

let set_window t w =
  if w <= 0. then invalid_arg "Rate_meter.set_window: window must be positive";
  t.sc.window <- w

let window t = t.sc.window

let expire t ~now =
  let horizon = now -. t.sc.window in
  let cap = Array.length t.times in
  let continue = ref true in
  while !continue && t.count > 0 do
    let i = t.head in
    if Array.unsafe_get t.times i < horizon then begin
      t.in_window_bytes <- t.in_window_bytes - Array.unsafe_get t.sizes i;
      t.head <- (i + 1) mod cap;
      t.count <- t.count - 1
    end
    else continue := false
  done

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let sizes = Array.make (2 * cap) 0 in
  for i = 0 to t.count - 1 do
    let j = (t.head + i) mod cap in
    times.(i) <- t.times.(j);
    sizes.(i) <- t.sizes.(j)
  done;
  t.times <- times;
  t.sizes <- sizes;
  t.head <- 0

let record t ~now ~bytes =
  if now < t.sc.last_time then
    invalid_arg "Rate_meter.record: time went backwards";
  t.sc.last_time <- now;
  if Float.is_nan t.sc.first_time then t.sc.first_time <- now;
  if t.count = Array.length t.times then grow t;
  let i = (t.head + t.count) mod Array.length t.times in
  Array.unsafe_set t.times i now;
  Array.unsafe_set t.sizes i bytes;
  t.count <- t.count + 1;
  t.in_window_bytes <- t.in_window_bytes + bytes;
  t.total <- t.total + bytes;
  expire t ~now

let rate_bytes_per_s t ~now =
  if Float.is_nan t.sc.first_time then 0.
  else begin
    expire t ~now;
    (* Floor the averaging span at half the window: a couple of
       back-to-back arrivals must not read as an enormous rate (the
       slowstart target is twice this measurement). *)
    let span =
      Float.max
        (Float.min t.sc.window (now -. t.sc.first_time))
        (t.sc.window /. 2.)
    in
    float_of_int t.in_window_bytes /. span
  end

let total_bytes t = t.total
