type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  node : Netsim.Node.t;
  sender : Netsim.Node.t;
  feedback_flow : int;
  history : Loss_history.t;
  meter : Rate_meter.t;
  mutable sender_rtt : float;  (* sender's estimate from data packets *)
  mutable last_data_ts : float;
  mutable last_data_arrival : float;
  mutable have_data : bool;
  mutable fb_timer : Netsim.Engine.handle option;
  mutable received : int;
  mutable fb_sent : int;
  (* Receive rate when the last (= first) loss occurred, for App. B
     seeding: half the rate at first loss, through the inverse equation. *)
  mutable rate_at_loss : float;
  m_received : Obs.Metrics.Counter.t;
  m_feedback : Obs.Metrics.Counter.t;
}

let send_feedback t =
  let now = Netsim.Engine.now t.engine in
  if t.have_data then begin
    let payload =
      Wire.Feedback
        {
          conn = t.conn;
          ts = now;
          echo_ts = t.last_data_ts;
          echo_delay = now -. t.last_data_arrival;
          p = Loss_history.loss_event_rate t.history;
          x_recv = Rate_meter.rate_bytes_per_s t.meter ~now;
        }
    in
    let p =
      Netsim.Packet.alloc ~flow:t.feedback_flow ~size:Wire.feedback_size
        ~src:(Netsim.Node.id t.node)
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.sender))
        ~created:now payload
    in
    Netsim.Topology.inject t.topo p;
    t.fb_sent <- t.fb_sent + 1;
    Obs.Metrics.Counter.inc t.m_feedback
  end

let rec schedule_feedback t =
  let delay = Float.max 1e-3 t.sender_rtt in
  t.fb_timer <-
    Some
      (Netsim.Engine.after t.engine ~delay (fun () ->
           send_feedback t;
           schedule_feedback t))

let on_data t ~seq ~ts ~rtt ~size =
  let now = Netsim.Engine.now t.engine in
  t.received <- t.received + 1;
  Obs.Metrics.Counter.inc t.m_received;
  t.have_data <- true;
  t.last_data_ts <- ts;
  t.last_data_arrival <- now;
  t.sender_rtt <- rtt;
  Rate_meter.set_window t.meter (Float.max 0.5 (4. *. rtt));
  Rate_meter.record t.meter ~now ~bytes:size;
  t.rate_at_loss <- Rate_meter.rate_bytes_per_s t.meter ~now;
  Loss_history.on_packet t.history ~seq ~now ~rtt;
  if t.fb_timer = None then begin
    (* First packet: give immediate feedback, then once per RTT. *)
    send_feedback t;
    schedule_feedback t
  end

let create topo ~conn ~node ~sender ?(feedback_flow = -1) () =
  let engine = Netsim.Topology.engine topo in
  let metrics = (Netsim.Engine.obs engine).Obs.Sink.metrics in
  let labels = [ ("conn", string_of_int conn) ] in
  let rec t =
    lazy
      {
        topo;
        engine;
        conn;
        node;
        sender;
        feedback_flow;
        history =
          Loss_history.create
            ~first_interval:(fun () ->
              let self = Lazy.force t in
              if self.rate_at_loss > 0. then
                Some
                  (Tcp_model.Mathis.initial_loss_interval ~s:Wire.data_size
                     ~rtt:(Float.max 1e-3 self.sender_rtt)
                     ~rate:(self.rate_at_loss /. 2.))
              else None)
            ();
        meter = Rate_meter.create ~window:2. ();
        sender_rtt = 0.5;
        last_data_ts = nan;
        last_data_arrival = nan;
        have_data = false;
        fb_timer = None;
        received = 0;
        fb_sent = 0;
        rate_at_loss = 0.;
        m_received =
          Obs.Metrics.counter metrics ~labels
            "tfrc_receiver_packets_received_total";
        m_feedback =
          Obs.Metrics.counter metrics ~labels "tfrc_receiver_feedback_total";
      }
  in
  let t = Lazy.force t in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Data { conn; seq; ts; rtt; _ } when conn = t.conn ->
          on_data t ~seq ~ts ~rtt ~size:p.Netsim.Packet.size
      | _ -> ());
  t

let loss_event_rate t = Loss_history.loss_event_rate t.history

let x_recv_bytes_per_s t =
  Rate_meter.rate_bytes_per_s t.meter ~now:(Netsim.Engine.now t.engine)

let packets_received t = t.received

let feedback_sent t = t.fb_sent
