type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 64 0.; values = Array.make 64 0.; len = 0 }

let ensure_capacity s =
  if s.len = Array.length s.times then begin
    let cap = 2 * Array.length s.times in
    let times = Array.make cap 0. and values = Array.make cap 0. in
    Array.blit s.times 0 times 0 s.len;
    Array.blit s.values 0 values 0 s.len;
    s.times <- times;
    s.values <- values
  end

let add s ~time ~value =
  if s.len > 0 && time < s.times.(s.len - 1) then
    invalid_arg "Timeseries.add: time must be non-decreasing";
  ensure_capacity s;
  s.times.(s.len) <- time;
  s.values.(s.len) <- value;
  s.len <- s.len + 1

let length s = s.len

let points s = Array.init s.len (fun i -> (s.times.(i), s.values.(i)))

let values s = Array.sub s.values 0 s.len

let times s = Array.sub s.times 0 s.len

let n_bins ~bin ~t_end =
  if bin <= 0. then invalid_arg "Timeseries: bin width must be positive";
  Stdlib.max 1 (int_of_float (ceil (t_end /. bin)))

let bin_sum s ~bin ~t_end =
  let nb = n_bins ~bin ~t_end in
  let sums = Array.make nb 0. in
  for i = 0 to s.len - 1 do
    let t = s.times.(i) in
    if t >= 0. && t < t_end then begin
      let b = Stdlib.min (nb - 1) (int_of_float (t /. bin)) in
      sums.(b) <- sums.(b) +. s.values.(i)
    end
  done;
  Array.init nb (fun b -> ((float_of_int b +. 0.5) *. bin, sums.(b)))

let bin_rate s ~bin ~t_end =
  bin_sum s ~bin ~t_end |> Array.map (fun (t, v) -> (t, v /. bin))

let between s ~t_start ~t_end =
  points s |> Array.to_list
  |> List.filter (fun (t, _) -> t >= t_start && t < t_end)
  |> Array.of_list

module Counter = struct
  type nonrec t = { series : t; mutable total : int }

  let create () = { series = create (); total = 0 }

  (* [add] inlined: called once per delivered packet, and routing the
     floats through another function boundary would box them again. *)
  let record c ~time ~bytes =
    let s = c.series in
    if s.len > 0 && time < s.times.(s.len - 1) then
      invalid_arg "Timeseries.add: time must be non-decreasing";
    ensure_capacity s;
    s.times.(s.len) <- time;
    s.values.(s.len) <- float_of_int bytes;
    s.len <- s.len + 1;
    c.total <- c.total + bytes

  let total_bytes c = c.total

  let throughput_bps c ~t_start ~t_end =
    if t_end <= t_start then 0.
    else begin
      let bytes =
        between c.series ~t_start ~t_end
        |> Array.fold_left (fun acc (_, v) -> acc +. v) 0.
      in
      bytes *. 8. /. (t_end -. t_start)
    end

  let rate_series_bps c ~bin ~t_end =
    bin_rate c.series ~bin ~t_end |> Array.map (fun (t, v) -> (t, v *. 8.))

  let series c = c.series
end
