#!/usr/bin/env python3
"""Bench regression guard: fresh BENCH_results.json vs the committed baseline.

Usage: bench_guard.py BASELINE.json FRESH.json

Two rules, both with a 25% tolerance:

- "full stack: minor words/simsec" is compared absolutely.  Minor-heap
  words per simulated second are exactly reproducible (no clocks
  involved), so any growth beyond tolerance is a real allocation
  regression whatever machine CI landed on.

- Every shared time benchmark (ns keys) is compared *relative to the
  median ratio* across all time keys.  CI hardware is not the machine
  the baseline was measured on: a uniform slowdown shifts every ratio
  equally and cancels out of the comparison, while one benchmark
  regressing shows up as its ratio exceeding the median by more than
  the tolerance.

Bookkeeping keys (job counts, speedups, core counts) are ignored.
Exit 0 = clean, 1 = regression(s), 2 = usage/parse error.
"""

import json
import statistics
import sys

TOLERANCE = 0.25
ALLOC_KEY = "full stack: minor words/simsec"
IGNORE = (
    "sweep: parallel jobs",
    "sweep: parallel speedup",
    "sweep: recommended domains",
)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            baseline = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_guard: cannot load results: {e}", file=sys.stderr)
        return 2

    failures = []

    if ALLOC_KEY in baseline and ALLOC_KEY in fresh:
        old, new = baseline[ALLOC_KEY], fresh[ALLOC_KEY]
        if old > 0 and new > old * (1 + TOLERANCE):
            failures.append(
                f"{ALLOC_KEY}: {old:.0f} -> {new:.0f} words "
                f"(+{100 * (new / old - 1):.1f}%, absolute check)"
            )
        else:
            print(f"ok (absolute): {ALLOC_KEY}: {old:.0f} -> {new:.0f}")

    time_keys = sorted(
        k
        for k in baseline
        if k in fresh
        and k != ALLOC_KEY
        and k not in IGNORE
        and isinstance(baseline[k], (int, float))
        and isinstance(fresh[k], (int, float))
        and baseline[k] > 0
        and fresh[k] > 0
    )
    if time_keys:
        ratios = {k: fresh[k] / baseline[k] for k in time_keys}
        median = statistics.median(ratios.values())
        print(
            f"machine calibration: median ratio {median:.3f} "
            f"over {len(time_keys)} time benchmarks"
        )
        for k in time_keys:
            rel = ratios[k] / median
            if rel > 1 + TOLERANCE:
                failures.append(
                    f"{k}: {baseline[k]:.0f} -> {fresh[k]:.0f} ns "
                    f"({rel:.2f}x the calibrated baseline)"
                )
            else:
                print(f"ok: {k}: {rel:.2f}x calibrated")

    if failures:
        print(f"\nbench_guard: {len(failures)} regression(s) beyond "
              f"{100 * TOLERANCE:.0f}% tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_guard: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
